"""The unified policy registry and the flash admission/cleaning axes."""

import dataclasses
import pickle
import random

import pytest

import repro
import repro.policies as policies
from tests.helpers import make_trace, tiny_config
from repro._units import BLOCK_SIZE, MB, SECOND
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation
from repro.errors import ConfigError
from repro.policies.admission import (
    AlwaysAdmit,
    ProbationaryAdmit,
    WriteBudgetAdmit,
)
from repro.policies.cleaning import (
    AggressiveClean,
    AgedClean,
    PeriodicClean,
)


def mixed_trace(n=4000, blocks=512, seed=7, warmup=1000, write_fraction=0.5):
    rng = random.Random(seed)
    ops = [
        ("w" if rng.random() < write_fraction else "r", rng.randrange(blocks))
        for _ in range(n)
    ]
    return make_trace(ops, file_blocks=4096, warmup=warmup)


class TestRegistryGet:
    def test_kinds(self):
        assert policies.KINDS == ("eviction", "admission", "cleaning", "writeback")

    def test_admission_constructors(self):
        assert policies.get("admission", "always").is_always
        assert policies.get("admission", "probationary", min_refs=4).min_refs == 4
        budget = policies.get("admission", "budget", bytes_per_second=8 * MB)
        assert budget.bytes_per_second == 8 * MB

    def test_cleaning_constructors(self):
        assert policies.get("cleaning", "periodic").is_periodic
        assert policies.get("cleaning", "alru", idle_ns=SECOND).idle_ns == SECOND
        acp = policies.get("cleaning", "acp", high_fraction=0.4, low_fraction=0.1)
        assert (acp.high_fraction, acp.low_fraction) == (0.4, 0.1)

    def test_eviction_returns_instances(self):
        from repro.cache.policy import ClockPolicy, SLRUPolicy

        assert isinstance(policies.get("eviction", "clock"), ClockPolicy)
        slru = policies.get(
            "eviction", "slru", capacity_blocks=100, protected_fraction=0.25
        )
        assert isinstance(slru, SLRUPolicy)
        assert slru.protected_capacity == 25

    def test_writeback_long_and_short_names(self):
        assert policies.get("writeback", "sync").label == "s"
        assert policies.get("writeback", "periodic", seconds=5).label == "p5"
        assert policies.get("writeback", "d2").label == "d2"

    def test_unknown_kind_and_name_rejected(self):
        with pytest.raises(ConfigError):
            policies.get("compression", "lz4")
        with pytest.raises(ConfigError):
            policies.get("admission", "tarot")
        with pytest.raises(ConfigError):
            policies.get("writeback", "sync", seconds=1, extra=2)


class TestRegistryResolve:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("always", AlwaysAdmit()),
            ("probationary", ProbationaryAdmit(min_refs=2)),
            ("probationary:3", ProbationaryAdmit(min_refs=3)),
            ("budget:8M", WriteBudgetAdmit(bytes_per_second=8 * MB)),
            (
                "budget:1M:64K",
                WriteBudgetAdmit(bytes_per_second=MB, burst_bytes=64 * 1024),
            ),
        ],
    )
    def test_admission_specs(self, spec, expected):
        assert policies.resolve("admission", spec) == expected

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("periodic", PeriodicClean()),
            ("alru", AgedClean()),
            ("alru:5", AgedClean(idle_ns=5 * SECOND)),
            ("acp", AggressiveClean()),
            ("acp:0.4", AggressiveClean(high_fraction=0.4)),
            ("acp:0.4:0.1", AggressiveClean(high_fraction=0.4, low_fraction=0.1)),
        ],
    )
    def test_cleaning_specs(self, spec, expected):
        assert policies.resolve("cleaning", spec) == expected

    def test_instances_pass_through(self):
        spec = ProbationaryAdmit(min_refs=5)
        assert policies.resolve("admission", spec) is spec
        wb = WritebackPolicy.periodic(3)
        assert policies.resolve("writeback", wb) is wb

    def test_eviction_resolves_to_string(self):
        assert policies.resolve("eviction", "LRU") == "lru"
        with pytest.raises(Exception):
            policies.resolve("eviction", "arc")

    @pytest.mark.parametrize(
        "kind,spec",
        [
            ("admission", "probationary:0"),
            ("admission", "budget"),
            ("admission", "budget:0"),
            ("admission", "budget:nope"),
            ("cleaning", "acp:1.5"),
            ("cleaning", "acp:0.5:0.6"),
            ("cleaning", "alru:x"),
            ("writeback", "periodic"),
            ("writeback", "q9"),
        ],
    )
    def test_bad_specs_rejected(self, kind, spec):
        with pytest.raises(ConfigError):
            policies.resolve(kind, spec)

    def test_wrong_types_rejected(self):
        with pytest.raises(ConfigError):
            policies.resolve("admission", 42)


class TestAvailable:
    def test_catalog_covers_all_kinds(self):
        catalog = policies.available()
        assert set(catalog) == set(policies.KINDS)
        for names in catalog.values():
            assert names  # never an empty kind

    def test_single_kind(self):
        assert list(policies.available("admission")) == ["admission"]


class TestSpecSemantics:
    SPECS = [
        AlwaysAdmit(),
        ProbationaryAdmit(min_refs=3),
        WriteBudgetAdmit(bytes_per_second=MB),
        PeriodicClean(),
        AgedClean(idle_ns=2 * SECOND),
        AggressiveClean(high_fraction=0.3),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label)
    def test_pickle_roundtrip_preserves_equality(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_value_semantics(self):
        assert ProbationaryAdmit(min_refs=2) == ProbationaryAdmit(min_refs=2)
        assert ProbationaryAdmit(min_refs=2) != ProbationaryAdmit(min_refs=3)
        assert AlwaysAdmit() != PeriodicClean()

    def test_specs_are_immutable(self):
        spec = ProbationaryAdmit(min_refs=2)
        with pytest.raises(AttributeError):
            spec.min_refs = 5
        clean = AggressiveClean()
        with pytest.raises(AttributeError):
            clean.high_fraction = 0.9

    def test_labels(self):
        assert AlwaysAdmit().label == "always"
        assert ProbationaryAdmit(min_refs=3).label == "probationary:3"
        assert AgedClean(idle_ns=30 * SECOND).label == "alru:30s"
        assert WriteBudgetAdmit(bytes_per_second=8 * MB).label.startswith("budget:")


class TestControllers:
    def test_probationary_controller_counts_verdicts(self):
        ctrl = ProbationaryAdmit(min_refs=2).controller()
        assert ctrl.needs_ref_ledger
        assert not ctrl.admit_fill(1, 0, now=0)
        assert not ctrl.admit_fill(1, 1, now=10)
        assert ctrl.admit_fill(1, 2, now=20)
        assert ctrl.counters() == {"checks": 3, "admits": 1, "rejects": 2}
        assert ctrl.promote_on_hit(2) and not ctrl.promote_on_hit(1)

    def test_budget_controller_refills_over_time(self):
        spec = WriteBudgetAdmit(
            bytes_per_second=BLOCK_SIZE, burst_bytes=BLOCK_SIZE
        )
        ctrl = spec.controller()
        assert not ctrl.needs_ref_ledger
        assert ctrl.admit_fill(1, 0, now=0)  # full bucket
        assert not ctrl.admit_fill(2, 0, now=0)  # drained
        assert ctrl.admit_fill(3, 0, now=SECOND)  # one second refills one block
        assert ctrl.counters()["rejects"] == 1

    def test_budget_updates_starve_fills(self):
        spec = WriteBudgetAdmit(
            bytes_per_second=BLOCK_SIZE, burst_bytes=BLOCK_SIZE
        )
        ctrl = spec.controller()
        ctrl.note_update(0)
        ctrl.note_update(0)  # balance now -1 block
        assert not ctrl.admit_fill(1, 0, now=0)
        # Two seconds of refill cover the debt plus one fill.
        assert ctrl.admit_fill(1, 0, now=2 * SECOND)

    def test_always_and_periodic_compile_to_none(self):
        assert AlwaysAdmit().controller() is None
        assert PeriodicClean().controller(None) is None


class TestConfigIntegration:
    def test_defaults_are_paper_policies(self):
        config = SimConfig()
        assert config.flash_admission == AlwaysAdmit()
        assert config.flash_cleaning == PeriodicClean()
        assert "admission" not in config.describe()
        assert "cleaning" not in config.describe()

    def test_spec_strings_normalize_to_instances(self):
        config = SimConfig(
            flash_admission="probationary:3", flash_cleaning="acp:0.4:0.1"
        )
        assert config.flash_admission == ProbationaryAdmit(min_refs=3)
        assert config.flash_cleaning == AggressiveClean(
            high_fraction=0.4, low_fraction=0.1
        )
        described = config.describe()
        assert "admission=probationary:3" in described
        assert "cleaning=acp:0.4:0.1" in described

    def test_with_policies_keywords(self):
        config = SimConfig().with_policies(
            flash_admission="budget:8M",
            flash_cleaning="alru:5",
            ram_writeback=WritebackPolicy.sync(),
        )
        assert config.flash_admission == WriteBudgetAdmit(bytes_per_second=8 * MB)
        assert config.flash_cleaning == AgedClean(idle_ns=5 * SECOND)
        assert config.ram_policy.label == "s"

    def test_config_pickles_with_policies(self):
        config = SimConfig(
            flash_admission="probationary:2", flash_cleaning="acp:0.5"
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.flash_admission == config.flash_admission
        assert clone.flash_cleaning == config.flash_cleaning

    @pytest.mark.parametrize(
        "architecture", [Architecture.UNIFIED, Architecture.EXCLUSIVE]
    )
    def test_integrated_architectures_reject_new_axes(self, architecture):
        kwargs = dict(ram_bytes=8 * MB, flash_bytes=8 * MB)
        with pytest.raises(ConfigError):
            SimConfig(
                architecture=architecture,
                flash_admission="probationary:2",
                **kwargs,
            )
        with pytest.raises(ConfigError):
            SimConfig(
                architecture=architecture, flash_cleaning="acp:0.5", **kwargs
            )

    def test_rated_erase_cycles_validated(self):
        assert SimConfig(ftl_rated_erase_cycles=100).ftl_rated_erase_cycles == 100
        with pytest.raises(ConfigError):
            SimConfig(ftl_rated_erase_cycles=0)

    def test_eviction_instances_rejected_on_config(self):
        from repro.cache.policy import LRUPolicy

        with pytest.raises(ConfigError):
            SimConfig(eviction_policy=LRUPolicy())


class TestDeprecationShims:
    def test_top_level_writeback_import_warns(self):
        with pytest.warns(DeprecationWarning):
            policy_cls = repro.WritebackPolicy
        assert policy_cls is WritebackPolicy

    def test_registry_reexports_writeback(self):
        assert policies.WritebackPolicy is WritebackPolicy


class TestSimulationBehavior:
    def test_default_controllers_absent(self):
        trace = mixed_trace(n=600, warmup=100)
        results = run_simulation(trace, tiny_config(), check_invariants=True)
        assert results.flash_admission_stats is None

    def test_probationary_reduces_program_bytes(self):
        trace = mixed_trace()
        base = tiny_config()
        always = run_simulation(trace, base, check_invariants=True)
        probation = run_simulation(
            trace,
            base.with_policies(flash_admission="probationary:2"),
            check_invariants=True,
        )
        assert probation.flash_admission_stats["rejects"] > 0
        assert probation.flash_program_bytes < always.flash_program_bytes

    def test_budget_bounds_program_bytes(self):
        trace = mixed_trace()
        base = tiny_config()
        results = run_simulation(
            trace,
            base.with_policies(flash_admission="budget:1M"),
            check_invariants=True,
        )
        stats = results.flash_admission_stats
        assert stats["checks"] == stats["admits"] + stats["rejects"]
        assert stats["rejects"] > 0

    def test_acp_drains_dirty_backlog(self):
        trace = mixed_trace(write_fraction=0.8)
        base = tiny_config(flash_policy=WritebackPolicy.parse("d5"))
        lazy = run_simulation(trace, base, check_invariants=True)
        acp = run_simulation(
            trace,
            base.with_policies(flash_cleaning="acp:0.02:0.01"),
            check_invariants=True,
        )
        # Draining flushes dirty blocks that the d5 policy would still
        # be sitting on at the end of the run.
        assert acp.filer_writes >= lazy.filer_writes

    def test_alru_flushes_idle_blocks(self):
        trace = mixed_trace(write_fraction=0.8)
        base = tiny_config(flash_policy=WritebackPolicy.parse("d5"))
        lazy = run_simulation(trace, base, check_invariants=True)
        alru = run_simulation(
            trace,
            base.with_policies(flash_cleaning="alru:0.0001"),
            check_invariants=True,
        )
        assert alru.filer_writes >= lazy.filer_writes

    def test_obs_twin_matches_plain_run(self):
        trace = mixed_trace()
        config = tiny_config(
            ftl_model=True,
        ).with_policies(
            flash_admission="probationary:2", flash_cleaning="acp:0.05"
        )
        plain = run_simulation(trace, config, check_invariants=True)
        observed = run_simulation(
            trace,
            dataclasses.replace(config, trace_events=True),
            check_invariants=True,
        )
        assert plain.simulated_ns == observed.simulated_ns
        assert plain.read_latency.mean_us == observed.read_latency.mean_us
        assert plain.flash_program_bytes == observed.flash_program_bytes
        assert plain.flash_admission_stats == observed.flash_admission_stats

    def test_endurance_metrics_with_ftl(self):
        trace = mixed_trace()
        results = run_simulation(
            trace, tiny_config(ftl_model=True), check_invariants=True
        )
        assert results.flash_program_bytes > 0
        assert results.flash_write_amp >= 1.0
        assert results.device_lifetime_days is not None
        assert results.device_lifetime_days > 0
        payload = results.as_dict()
        assert payload["flash_program_bytes"] == results.flash_program_bytes
        assert payload["flash_write_amp"] == results.flash_write_amp

    def test_lifetime_scales_with_rated_cycles(self):
        trace = mixed_trace()
        lo = run_simulation(
            trace, tiny_config(ftl_model=True, ftl_rated_erase_cycles=1000)
        )
        hi = run_simulation(
            trace, tiny_config(ftl_model=True, ftl_rated_erase_cycles=3000)
        )
        if lo.flash_erase_count > 0:
            assert hi.device_lifetime_days == pytest.approx(
                3 * lo.device_lifetime_days
            )
        else:
            assert lo.device_lifetime_days == float("inf")

    def test_endurance_metrics_without_ftl(self):
        trace = mixed_trace(n=600, warmup=100)
        results = run_simulation(trace, tiny_config())
        assert results.flash_program_bytes > 0  # host traffic only
        assert results.flash_erase_count == 0
        assert results.flash_write_amp is None
        assert results.device_lifetime_days is None
