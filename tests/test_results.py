"""Tests for SimulationResults reporting."""

import json

import pytest

from repro.core.metrics import LatencyStat
from repro.core.results import SimulationResults


def make_results(**overrides):
    read = LatencyStat()
    read.record(88_400)
    read.record(162_568)
    write = LatencyStat()
    write.record(400)
    defaults = dict(
        config_description="naive ram=1.0 MB flash=8.0 MB",
        read_latency=read,
        write_latency=write,
        read_request_latency=LatencyStat(),
        write_request_latency=LatencyStat(),
        simulated_ns=2_000_000_000,
        measured_ns=1_000_000_000,
        records_replayed=100,
        blocks_read=2,
        blocks_written=1,
        tier_stats={"ram": {"hits": 10, "misses": 30, "hit_rate": 0.25}},
        filer_fast_reads=27,
        filer_slow_reads=3,
        filer_writes=12,
        flash_blocks_read=5,
        flash_blocks_written=9,
        network_utilization=0.125,
        block_writes=40,
        writes_requiring_invalidation=10,
        copies_invalidated=11,
    )
    defaults.update(overrides)
    return SimulationResults(**defaults)


class TestHeadlineMetrics:
    def test_latency_in_us(self):
        results = make_results()
        assert results.read_latency_us == pytest.approx((88.4 + 162.568) / 2)
        assert results.write_latency_us == pytest.approx(0.4)

    def test_hit_rate_lookup(self):
        results = make_results()
        assert results.hit_rate("ram") == 0.25
        assert results.hit_rate("flash") is None

    def test_invalidation_fraction(self):
        assert make_results().invalidation_fraction == pytest.approx(0.25)

    def test_invalidation_fraction_no_writes(self):
        assert make_results(block_writes=0).invalidation_fraction == 0.0

    def test_filer_reads_total(self):
        assert make_results().filer_reads == 30

    def test_throughput(self):
        results = make_results()
        # 3 blocks over 1 simulated second
        assert results.blocks_per_second == pytest.approx(3.0)
        assert results.throughput_mb_s == pytest.approx(3 * 4096 / 2**20)

    def test_throughput_zero_measured_time(self):
        assert make_results(measured_ns=0).blocks_per_second == 0.0


class TestSummary:
    def test_mentions_key_quantities(self):
        text = make_results().summary()
        assert "naive ram=1.0 MB" in text
        assert "read latency" in text
        assert "ram hit rate" in text
        assert "90% fast" in text
        assert "invalidations" in text
        assert "12.5%" in text  # network utilization

    def test_no_flash_traffic_line_when_zero(self):
        results = make_results(flash_blocks_read=0, flash_blocks_written=0)
        assert "flash traffic" not in results.summary()

    def test_empty_filer_is_safe(self):
        results = make_results(filer_fast_reads=0, filer_slow_reads=0)
        assert "0 reads" in results.summary()


class TestAsDict:
    def test_json_serializable(self):
        payload = json.dumps(make_results().as_dict())
        decoded = json.loads(payload)
        assert decoded["read_latency_us"] == pytest.approx((88.4 + 162.568) / 2)
        assert decoded["tier_stats"]["ram"]["hits"] == 10


class TestMerge:
    def test_every_field_has_a_merge_rule(self):
        from dataclasses import fields

        from repro.core.results import _MERGE_RULES

        assert set(_MERGE_RULES) == {f.name for f in fields(SimulationResults)}

    def test_counters_sum_and_clocks_max(self):
        a = make_results(simulated_ns=500, blocks_read=2, records_replayed=10)
        b = make_results(simulated_ns=900, blocks_read=5, records_replayed=4)
        merged = a.merge(b)
        assert merged.simulated_ns == 900
        assert merged.blocks_read == 7
        assert merged.records_replayed == 14
        assert merged.block_writes == 80

    def test_latencies_merge_counts_and_totals(self):
        merged = make_results().merge(make_results())
        single = make_results()
        assert merged.read_latency.count == 2 * single.read_latency.count
        assert merged.read_latency.total_ns == 2 * single.read_latency.total_ns
        assert merged.read_latency.min_ns == single.read_latency.min_ns
        assert merged.read_latency.max_ns == single.read_latency.max_ns

    def test_tier_stats_recompute_hit_rate(self):
        merged = make_results().merge(make_results())
        ram = merged.tier_stats["ram"]
        assert ram["hits"] == 20 and ram["misses"] == 60
        assert ram["hit_rate"] == 20 / 80

    def test_overrides_replace_derived_floats(self):
        merged = make_results().merge(
            make_results(), overrides={"network_utilization": 0.5}
        )
        assert merged.network_utilization == 0.5

    def test_unknown_override_name_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            make_results().merge(make_results(), overrides={"not_a_field": 1})

    def test_merge_all_folds_in_order(self):
        parts = [make_results(blocks_read=i) for i in (1, 2, 3)]
        merged = SimulationResults.merge_all(parts)
        assert merged.blocks_read == 6

    def test_new_field_without_rule_fails_loudly(self):
        # The regression this guards: a future PR adds a counter to
        # SimulationResults but forgets the merge rule, and parallel
        # replay silently drops it.  merge() must refuse instead.
        from dataclasses import dataclass, field as dc_field

        from repro.errors import SimulationError

        @dataclass
        class ExtendedResults(SimulationResults):
            brand_new_counter: int = 0

        base = make_results()
        kwargs = {f: getattr(base, f) for f in base.__dataclass_fields__}
        extended = ExtendedResults(**kwargs)
        with pytest.raises(SimulationError, match="_MERGE_RULES"):
            extended.merge(extended)
