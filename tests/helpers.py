"""Shared helpers for the test suite."""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple, Union

from repro._units import MB
from repro.core.config import SimConfig, TimingModel
from repro.core.policies import WritebackPolicy
from repro.filer.timing import FilerTiming
from repro.traces.records import Trace, TraceOp, TraceRecord

#: (op, block) or (op, block, host) shorthand used by make_trace.
OpSpec = Union[Tuple[str, int], Tuple[str, int, int]]


def make_trace(
    ops: Sequence[OpSpec],
    file_blocks: int = 4096,
    warmup: int = 0,
    thread: int = 0,
) -> Trace:
    """Build a single-file trace from (op, block[, host]) tuples.

    Blocks are offsets within one file of ``file_blocks`` blocks, so
    block numbers equal global block numbers.
    """
    records: List[TraceRecord] = []
    for spec in ops:
        if len(spec) == 3:
            op, block, host = spec
        else:
            op, block = spec
            host = 0
        records.append(
            TraceRecord(
                TraceOp.WRITE if op.lower() == "w" else TraceOp.READ,
                host,
                thread,
                0,
                block,
                1,
            )
        )
    return Trace(records, [file_blocks], warmup_records=warmup)


def deterministic_timing(fast_read_rate: float = 1.0) -> TimingModel:
    """Table 1 timing with a deterministic filer (all reads fast)."""
    timing = TimingModel.paper_default()
    return replace(timing, filer=FilerTiming(fast_read_rate=fast_read_rate))


def tiny_config(**overrides) -> SimConfig:
    """A small deterministic config for micro-traces.

    1 MB RAM / 8 MB flash, deterministic filer, async write-through at
    both tiers (no syncer noise) unless overridden.
    """
    defaults = dict(
        ram_bytes=1 * MB,
        flash_bytes=8 * MB,
        timing=deterministic_timing(),
        ram_policy=WritebackPolicy.asynchronous(),
        flash_policy=WritebackPolicy.asynchronous(),
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


# Exact single-block path latencies under Table 1 timing (nanoseconds).
RAM_READ_NS = 400
RAM_WRITE_NS = 400
FLASH_READ_NS = 88_000
FLASH_WRITE_NS = 21_000
NET_REQUEST_NS = 8_200               # header-only packet
NET_DATA_NS = 8_200 + 8 * 4096      # header + 4 KB at 1 ns/bit
FILER_FAST_READ_NS = 92_000
FILER_WRITE_NS = 92_000

#: App-observed read latencies for each hit level (naive architecture).
RAM_HIT_READ_NS = RAM_READ_NS
FLASH_HIT_READ_NS = FLASH_READ_NS + RAM_WRITE_NS
MISS_READ_NS = (
    NET_REQUEST_NS
    + FILER_FAST_READ_NS
    + NET_DATA_NS
    + FLASH_WRITE_NS
    + RAM_WRITE_NS
)
MISS_READ_NOFLASH_NS = NET_REQUEST_NS + FILER_FAST_READ_NS + NET_DATA_NS + RAM_WRITE_NS

#: Full synchronous filer write as seen from a host (data, service, ack).
FILER_WRITE_PATH_NS = NET_DATA_NS + FILER_WRITE_NS + NET_REQUEST_NS
