"""Tests for the global consistency directory."""

import pytest

from repro.core.consistency import ConsistencyDirectory


def directory_with_hosts(n=2):
    directory = ConsistencyDirectory(n)
    dropped = {host: [] for host in range(n)}
    for host in range(n):
        directory.register_host(host, dropped[host].append)
    return directory, dropped


class TestCopyTracking:
    def test_note_copy_and_holders(self):
        directory, _dropped = directory_with_hosts()
        directory.note_copy(0, 42)
        directory.note_copy(1, 42)
        assert directory.holders_of(42) == {0, 1}

    def test_note_drop(self):
        directory, _dropped = directory_with_hosts()
        directory.note_copy(0, 42)
        directory.note_drop(0, 42)
        assert directory.holders_of(42) == set()

    def test_note_drop_without_copy_is_noop(self):
        directory, _dropped = directory_with_hosts()
        directory.note_drop(0, 42)  # must not raise


class TestInvalidation:
    def test_write_invalidates_remote_copies(self):
        directory, dropped = directory_with_hosts()
        directory.note_copy(1, 7)
        count = directory.on_block_write(0, 7)
        assert count == 1
        assert dropped[1] == [7]
        assert dropped[0] == []
        assert directory.holders_of(7) == set()

    def test_write_keeps_local_copy(self):
        directory, dropped = directory_with_hosts()
        directory.note_copy(0, 7)
        directory.note_copy(1, 7)
        directory.on_block_write(0, 7)
        assert directory.holders_of(7) == {0}
        assert dropped[0] == []

    def test_write_with_no_copies(self):
        directory, dropped = directory_with_hosts()
        assert directory.on_block_write(0, 7) == 0
        assert dropped[1] == []

    def test_three_hosts(self):
        directory, dropped = directory_with_hosts(3)
        for host in (1, 2):
            directory.note_copy(host, 5)
        assert directory.on_block_write(0, 5) == 2
        assert dropped[1] == [5]
        assert dropped[2] == [5]


class TestMeasurementGating:
    def test_unmeasured_writes_invalidate_but_do_not_count(self):
        directory, dropped = directory_with_hosts()
        directory.note_copy(1, 7)
        directory.on_block_write(0, 7, measured=False)
        assert dropped[1] == [7]  # the invalidation itself still happens
        assert directory.block_writes == 0
        assert directory.writes_requiring_invalidation == 0

    def test_measured_writes_count(self):
        directory, _dropped = directory_with_hosts()
        directory.note_copy(1, 7)
        directory.on_block_write(0, 7)  # requires invalidation
        directory.on_block_write(0, 8)  # does not
        assert directory.block_writes == 2
        assert directory.writes_requiring_invalidation == 1
        assert directory.copies_invalidated == 1
        assert directory.invalidation_fraction == pytest.approx(0.5)

    def test_reset_counters(self):
        directory, _dropped = directory_with_hosts()
        directory.on_block_write(0, 1)
        directory.reset_counters()
        assert directory.block_writes == 0

    def test_fraction_empty(self):
        directory, _dropped = directory_with_hosts()
        assert directory.invalidation_fraction == 0.0


class TestTrafficHook:
    def test_hook_fires_per_dropped_copy(self):
        directory, _dropped = directory_with_hosts(3)
        messages = []
        directory.traffic_hook = lambda writer, victim: messages.append(
            (writer, victim)
        )
        directory.note_copy(1, 7)
        directory.note_copy(2, 7)
        directory.on_block_write(0, 7)
        assert sorted(messages) == [(0, 1), (0, 2)]

    def test_hook_silent_without_remote_copies(self):
        directory, _dropped = directory_with_hosts()
        messages = []
        directory.traffic_hook = lambda writer, victim: messages.append(victim)
        directory.on_block_write(0, 7)
        assert messages == []

    def test_system_charges_victim_wire(self):
        from repro.core.machine import System
        from tests.helpers import tiny_config
        from tests.test_host_naive import timed

        config = tiny_config(model_invalidation_traffic=True)
        system = System(config, 2)
        timed(system, system.hosts[1].read_block(0))
        packets_before = system.segments[1].packets_sent
        timed(system, system.hosts[0].write_block(0))
        assert system.invalidation_messages == 1
        assert system.segments[1].packets_sent == packets_before + 1

    def test_disabled_by_default(self):
        from repro.core.machine import System
        from tests.helpers import tiny_config

        system = System(tiny_config(), 2)
        assert system.directory.traffic_hook is None

    def test_hook_silent_for_unregistered_victim(self):
        # A holder that never registered a dropper drops nothing, so no
        # invalidation message may be charged for it — but the copy is
        # still invalidated and counted (the directory is the truth).
        directory = ConsistencyDirectory(3)
        dropped = []
        directory.register_host(0, dropped.append)
        directory.register_host(1, dropped.append)
        messages = []
        directory.traffic_hook = lambda writer, victim: messages.append(
            (writer, victim)
        )
        directory.note_copy(2, 7)
        assert directory.on_block_write(0, 7) == 1
        assert directory.copies_invalidated == 1
        assert directory.holders_of(7) == set()
        assert messages == []


class TestRestartHolderState:
    def test_restart_mid_demote_leaves_no_stale_holder(self):
        # A demotion suspended on its flash write must not re-register
        # the host as a holder after a volatile restart wiped the block.
        from repro.core.architectures import Architecture
        from repro.core.machine import System
        from tests.helpers import tiny_config

        config = tiny_config(architecture=Architecture.EXCLUSIVE)
        system = System(config, 2)
        host = system.hosts[0]
        gen = host._demote_install(42, False)
        next(gen)  # block 42 is in flash; the device write is in flight
        assert 42 in host.flash
        host.apply_restart(volatile_flash=True, scan_ns_per_block=0)
        for _ in gen:  # the suspended demotion resumes after the reboot
            pass
        assert 0 not in system.directory.holders_of(42)

    def test_drop_host_forgets_every_copy(self):
        directory, _dropped = directory_with_hosts(3)
        for block in (3, 70, 141):  # spread across shards
            directory.note_copy(0, block)
            directory.note_copy(2, block)
        directory.on_block_write(1, 3)
        counters = (
            directory.block_writes,
            directory.writes_requiring_invalidation,
            directory.copies_invalidated,
        )
        directory.note_copy(0, 9)
        directory.drop_host(0)
        for block in (3, 9, 70, 141):
            assert 0 not in directory.holders_of(block)
        assert directory.holders_of(70) == {2}
        # drop_host is state cleanup, not an invalidation: counters stay.
        assert counters == (
            directory.block_writes,
            directory.writes_requiring_invalidation,
            directory.copies_invalidated,
        )
