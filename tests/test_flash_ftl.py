"""Tests for the page-mapped FTL extension."""

import pytest

from repro.errors import ConfigError
from repro.flash.ftl import FTLConfig, PageMappedFTL


def small_ftl(**overrides):
    defaults = dict(n_blocks=8, pages_per_block=4, overprovision=0.25)
    defaults.update(overrides)
    return PageMappedFTL(FTLConfig(**defaults))


class TestMapping:
    def test_unwritten_page_unmapped(self):
        assert small_ftl().read(0) is None

    def test_write_then_read_maps(self):
        ftl = small_ftl()
        ftl.write(3)
        assert ftl.read(3) is not None

    def test_overwrite_moves_physical_location(self):
        ftl = small_ftl()
        ftl.write(3)
        first = ftl.read(3)
        ftl.write(3)
        second = ftl.read(3)
        assert first != second  # out-of-place update

    def test_distinct_pages_distinct_locations(self):
        ftl = small_ftl()
        ftl.write(0)
        ftl.write(1)
        assert ftl.read(0) != ftl.read(1)

    def test_trim_unmaps(self):
        ftl = small_ftl()
        ftl.write(3)
        ftl.trim(3)
        assert ftl.read(3) is None

    def test_out_of_range_lpn_rejected(self):
        ftl = small_ftl()
        with pytest.raises(ConfigError):
            ftl.write(ftl.config.logical_pages)
        with pytest.raises(ConfigError):
            ftl.read(-1)


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self):
        ftl = small_ftl()
        for round_number in range(40):
            for lpn in range(ftl.config.logical_pages):
                ftl.write(lpn)
        assert ftl.gc_runs > 0
        assert ftl.erases > 0
        # All pages still readable after GC moved them around.
        for lpn in range(ftl.config.logical_pages):
            assert ftl.read(lpn) is not None

    def test_write_amplification_at_least_one(self):
        ftl = small_ftl()
        for _ in range(20):
            for lpn in range(ftl.config.logical_pages):
                ftl.write(lpn)
        assert ftl.write_amplification >= 1.0

    def test_cold_data_survives_gc(self):
        ftl = small_ftl()
        ftl.write(0)  # cold page, never rewritten
        for _ in range(50):
            for lpn in range(1, ftl.config.logical_pages):
                ftl.write(lpn)
        assert ftl.read(0) is not None

    def test_wear_stats_structure(self):
        ftl = small_ftl()
        for _ in range(30):
            for lpn in range(ftl.config.logical_pages):
                ftl.write(lpn)
        wear = ftl.wear_stats()
        assert set(wear) == {"min", "max", "mean"}
        assert all(isinstance(value, float) for value in wear.values())
        assert wear["max"] >= wear["mean"] >= wear["min"] >= 0
        assert wear["mean"] == ftl.erases / ftl.config.n_blocks

    def test_wear_stats_all_zero_on_fresh_device(self):
        wear = small_ftl().wear_stats()
        assert set(wear) == {"min", "max", "mean"}
        assert wear == {"min": 0.0, "max": 0.0, "mean": 0.0}

    def test_no_host_writes_means_zero_amplification(self):
        # Before any host write there is no traffic to amplify: the
        # ratio is defined as 0.0, not 1.0 (and not NaN).
        assert small_ftl().write_amplification == 0.0

    def test_first_host_write_brings_amplification_to_one(self):
        ftl = small_ftl()
        ftl.write(0)
        assert ftl.write_amplification == 1.0


class TestConfig:
    def test_logical_smaller_than_physical(self):
        config = FTLConfig(n_blocks=8, pages_per_block=4, overprovision=0.25)
        assert config.logical_pages < config.physical_pages

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            FTLConfig(n_blocks=2)
        with pytest.raises(ConfigError):
            FTLConfig(overprovision=1.0)
        with pytest.raises(ConfigError):
            FTLConfig(gc_threshold_blocks=0)


class TestGCFreeListRegression:
    """Regression tests for the free-list drain bug: GC used to reclaim
    at most one erase block per host write while its relocations
    consumed open-block space, so high valid-page occupancy could drain
    the free list until ``_open_new_block`` raised SimulationError."""

    def test_gc_survives_tight_geometry(self):
        # Pre-fix: every seed crashes within a few hundred overwrites.
        ftl = PageMappedFTL(
            FTLConfig(
                n_blocks=8,
                pages_per_block=4,
                overprovision=0.01,
                gc_threshold_blocks=2,
            )
        )
        import random

        rng = random.Random(0)
        pages = ftl.config.logical_pages
        for lpn in range(pages):
            ftl.write(lpn)
        for _ in range(2000):
            ftl.write(rng.randrange(pages))
        # Every page survived the churn and the mapping is intact.
        for lpn in range(pages):
            assert ftl.read(lpn) is not None

    def test_gc_restores_free_threshold(self):
        # With slack comfortably above the threshold, every write must
        # return with the free-block reserve restored (pre-fix a single
        # GC pass per write routinely left it below the threshold).
        import random

        config = FTLConfig(
            n_blocks=12,
            pages_per_block=4,
            overprovision=0.3,
            gc_threshold_blocks=3,
        )
        ftl = PageMappedFTL(config)
        rng = random.Random(1)
        for lpn in range(config.logical_pages):
            ftl.write(lpn)
        for _ in range(3000):
            ftl.write(rng.randrange(config.logical_pages))
            assert ftl.free_blocks >= config.gc_threshold_blocks

    def test_free_list_structures_agree(self):
        import random

        ftl = PageMappedFTL(
            FTLConfig(n_blocks=8, pages_per_block=4, overprovision=0.25)
        )
        rng = random.Random(2)
        for _ in range(500):
            ftl.write(rng.randrange(ftl.config.logical_pages))
            assert set(ftl._free) == ftl._free_set
            assert ftl._open.index not in ftl._free_set
