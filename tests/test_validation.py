"""Simulator validation, in the spirit of the paper's §6.

The paper validated its simulator against NetApp's Mercury hardware
("all or nearly all matched within 10%").  Without that hardware, we do
the analogous internal validation: replay the same trace through the
full event-driven simulator and through *independent, obviously-correct
reference models* (a plain LRU replay for hit rates; closed-form
arithmetic for latencies), and require agreement.
"""

from collections import OrderedDict

import pytest

from repro._units import MB
from repro.core.simulator import run_simulation
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace

from tests.helpers import (
    FLASH_HIT_READ_NS,
    MISS_READ_NS,
    RAM_HIT_READ_NS,
    RAM_WRITE_NS,
    tiny_config,
)


def single_thread_trace(**overrides):
    """A single-threaded trace: replay order is fully deterministic, so
    reference models can be compared exactly."""
    defaults = dict(
        fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
        working_set_bytes=4 * MB,
        threads_per_host=1,
        seed=21,
    )
    defaults.update(overrides)
    return generate_trace(TraceGenConfig(**defaults))


class ReferenceStack:
    """An independent two-tier LRU model (naive architecture, reads only
    tracked for hit accounting; writes dirty the RAM tier).

    Deliberately written in the most straightforward style possible —
    OrderedDicts and explicit ifs — to serve as the oracle.
    """

    def __init__(self, ram_blocks, flash_blocks):
        self.ram_blocks = ram_blocks
        self.flash_blocks = flash_blocks
        self.ram = OrderedDict()
        self.flash = OrderedDict()
        self.ram_hits = self.ram_misses = 0
        self.flash_hits = self.flash_misses = 0

    def _touch(self, store, key):
        store.move_to_end(key)

    def _insert_ram(self, block):
        if block in self.ram:
            self._touch(self.ram, block)
            return
        while len(self.ram) >= self.ram_blocks:
            self.ram.popitem(last=False)
        self.ram[block] = None

    def _insert_flash(self, block):
        if block in self.flash:
            self._touch(self.flash, block)
            return
        while len(self.flash) >= self.flash_blocks:
            # skip blocks currently in RAM (the simulator pins them)
            for candidate in self.flash:
                if candidate not in self.ram:
                    del self.flash[candidate]
                    break
            else:
                self.flash.popitem(last=False)
        self.flash[block] = None

    def read(self, block):
        if block in self.ram:
            self.ram_hits += 1
            self._touch(self.ram, block)
            return "ram"
        self.ram_misses += 1
        if block in self.flash:
            self.flash_hits += 1
            self._touch(self.flash, block)
            self._insert_ram(block)
            return "flash"
        self.flash_misses += 1
        self._insert_flash(block)
        self._insert_ram(block)
        return "filer"

    def write(self, block):
        # Async write-through: lands in RAM, then (immediately, in the
        # reference model) in flash.
        self._insert_ram(block)
        self._insert_flash(block)


def replay_reference(trace, ram_blocks, flash_blocks):
    stack = ReferenceStack(ram_blocks, flash_blocks)
    levels = []
    for index, record in enumerate(trace.records):
        measured = index >= trace.warmup_records
        for block in trace.record_blocks(record):
            if record.is_write:
                stack.write(block)
                if measured:
                    levels.append("write")
            else:
                level = stack.read(block)
                if measured:
                    levels.append(level)
    return stack, levels


class TestHitRateValidation:
    def test_single_thread_hit_rates_match_reference_exactly(self):
        trace = single_thread_trace(write_fraction=0.0)
        config = tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        results = run_simulation(trace, config)

        stack, _levels = replay_reference(trace, 256, 2048)
        # Compare measured-phase hit rates.  The simulator resets its
        # counters at the warmup boundary; rebuild the same numbers from
        # the reference model by replaying in two phases.
        warm_stack = ReferenceStack(256, 2048)
        for record in trace.records[: trace.warmup_records]:
            for block in trace.record_blocks(record):
                warm_stack.read(block)
        warm_stack.ram_hits = warm_stack.ram_misses = 0
        warm_stack.flash_hits = warm_stack.flash_misses = 0
        for record in trace.records[trace.warmup_records :]:
            for block in trace.record_blocks(record):
                warm_stack.read(block)

        sim_ram = results.tier_stats["ram"]
        assert sim_ram["hits"] == warm_stack.ram_hits
        assert sim_ram["misses"] == warm_stack.ram_misses
        sim_flash = results.tier_stats["flash"]
        assert sim_flash["hits"] == warm_stack.flash_hits
        assert sim_flash["misses"] == warm_stack.flash_misses


class TestLatencyValidation:
    def test_read_latency_matches_closed_form(self):
        """With a deterministic filer and one thread there is no
        queueing, so the mean read latency must equal the hit-level mix
        exactly."""
        trace = single_thread_trace(write_fraction=0.0)
        config = tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        results = run_simulation(trace, config)

        _stack, levels = replay_reference(trace, 256, 2048)
        expected_total = 0
        for level in levels:
            expected_total += {
                "ram": RAM_HIT_READ_NS,
                "flash": FLASH_HIT_READ_NS,
                "filer": MISS_READ_NS,
            }[level]
        expected_mean = expected_total / len(levels)
        assert results.read_latency.mean_ns == pytest.approx(expected_mean, rel=1e-9)

    def test_write_latency_exact(self):
        trace = single_thread_trace(write_fraction=1.0)
        config = tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        results = run_simulation(trace, config)
        assert results.write_latency.mean_ns == RAM_WRITE_NS


class TestStochasticModelValidation:
    def test_filer_fast_rate_within_tolerance(self):
        """The paper's Table 1 sets a 90% fast-read rate; the observed
        rate over a full run must match within a few percent (the §6.1
        'within 10%' spirit)."""
        from tests.helpers import deterministic_timing

        trace = single_thread_trace(write_fraction=0.0, working_set_bytes=16 * MB)
        config = tiny_config(
            ram_bytes=256 * 1024,
            flash_bytes=2 * MB,
            timing=deterministic_timing(fast_read_rate=0.9),
        )
        results = run_simulation(trace, config)
        observed = results.filer_fast_reads / results.filer_reads
        assert observed == pytest.approx(0.9, abs=0.03)

    def test_multithreaded_run_close_to_single_thread_hit_rates(self):
        """Thread interleaving perturbs LRU order slightly; hit rates
        must stay within 10% of the single-threaded replay (the paper's
        validation bar)."""
        base = dict(
            fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
            working_set_bytes=4 * MB,
            seed=21,
            write_fraction=0.0,
        )
        one = generate_trace(TraceGenConfig(threads_per_host=1, **base))
        eight = generate_trace(TraceGenConfig(threads_per_host=8, **base))
        config = tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        rate_one = run_simulation(one, config).hit_rate("flash")
        rate_eight = run_simulation(eight, config).hit_rate("flash")
        assert rate_eight == pytest.approx(rate_one, rel=0.10)
