"""White-box tests of the lookaside (Mercury-like) architecture."""

from repro._units import KB
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy

from tests.helpers import (
    FILER_WRITE_PATH_NS,
    FLASH_HIT_READ_NS,
    FLASH_WRITE_NS,
    MISS_READ_NS,
    RAM_HIT_READ_NS,
    RAM_WRITE_NS,
    tiny_config,
)
from tests.test_host_naive import timed


def lookaside_config(**overrides):
    return tiny_config(architecture=Architecture.LOOKASIDE, **overrides)


class TestReadsMatchNaive:
    """Reads are identical to the naive architecture."""

    def test_cold_miss(self):
        system = System(lookaside_config(), 1)
        assert timed(system, system.hosts[0].read_block(0)) == MISS_READ_NS

    def test_ram_hit(self):
        system = System(lookaside_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert timed(system, host.read_block(0)) == RAM_HIT_READ_NS

    def test_flash_hit(self):
        system = System(lookaside_config(ram_bytes=8 * KB), 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        assert timed(system, host.read_block(0)) == FLASH_HIT_READ_NS


class TestWritePath:
    def test_async_write_is_ram_speed(self):
        system = System(lookaside_config(), 1)
        assert timed(system, system.hosts[0].write_block(0)) == RAM_WRITE_NS

    def test_sync_write_goes_to_filer_not_flash(self):
        config = lookaside_config(ram_policy=WritebackPolicy.sync())
        system = System(config, 1)
        duration = timed(system, system.hosts[0].write_block(0))
        # RAM write + filer round trip + the post-filer flash update.
        assert duration == RAM_WRITE_NS + FILER_WRITE_PATH_NS + FLASH_WRITE_NS

    def test_flash_updated_after_filer_write(self):
        config = lookaside_config(ram_policy=WritebackPolicy.sync())
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        assert 0 in host.flash
        assert not host.flash.peek(0).dirty
        assert system.filer.writes == 1

    def test_flash_policy_is_irrelevant(self):
        """The flash never holds dirty data, so the flash policy cannot
        change the write path."""
        durations = {}
        for flash_policy in (WritebackPolicy.sync(), WritebackPolicy.none()):
            config = lookaside_config(flash_policy=flash_policy)
            system = System(config, 1)
            durations[flash_policy.label] = timed(
                system, system.hosts[0].write_block(0)
            )
        assert durations["s"] == durations["n"]


class TestFlashNeverDirty:
    def test_invariant_under_mixed_workload(self):
        config = lookaside_config(
            ram_bytes=8 * KB, flash_bytes=32 * KB,
            ram_policy=WritebackPolicy.none(),  # worst case for dirtiness
        )
        system = System(config, 1)
        host = system.hosts[0]

        def workload():
            for i in range(40):
                if i % 3 == 0:
                    yield from host.write_block(i % 10)
                else:
                    yield from host.read_block(i % 12)
                assert host.flash.dirty_count == 0

        system.sim.run_until_complete(workload())
        assert host.flash.dirty_count == 0

    def test_dirty_ram_eviction_writes_filer_then_flash(self):
        config = lookaside_config(
            ram_bytes=8 * KB, ram_policy=WritebackPolicy.none()
        )
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        timed(system, host.write_block(1))
        # Third write evicts dirty block 0 -> filer write + flash update.
        duration = timed(system, host.write_block(2))
        assert duration == RAM_WRITE_NS + FILER_WRITE_PATH_NS + FLASH_WRITE_NS
        assert system.filer.writes == 1
        assert 0 in host.flash
        assert host.flash.dirty_count == 0
