"""Tests for the parallel sweep engine (``repro.sweep``)."""

from __future__ import annotations

import pickle

import pytest

from repro import sweep
from repro._units import MB
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core.simulator import run_simulation
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.sweep import (
    SweepPoint,
    run_sweep,
    run_sweep_points,
    trace_fingerprint,
)
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace


@pytest.fixture(scope="module")
def small_trace():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
        working_set_bytes=4 * MB,
        seed=7,
    )
    return generate_trace(config)


def small_grid():
    """A miniature figure2-style grid: architectures x flash sizes."""
    return [
        SimConfig(ram_bytes=1 * MB, flash_bytes=flash_mb * MB, architecture=arch)
        for arch in (Architecture.NAIVE, Architecture.UNIFIED)
        for flash_mb in (2, 8)
    ]


class TestSerialParallelEquality:
    def test_parallel_matches_serial_exactly(self, small_trace):
        configs = small_grid()
        serial = run_sweep(small_trace, configs, workers=1)
        parallel = run_sweep(small_trace, configs, workers=2)
        assert len(serial) == len(parallel) == len(configs)
        for expected, actual in zip(serial, parallel):
            assert expected.as_dict() == actual.as_dict()
            assert expected.simulated_ns == actual.simulated_ns

    def test_sweep_matches_direct_run_simulation(self, small_trace):
        configs = small_grid()
        swept = run_sweep(small_trace, configs, workers=2)
        for config, result in zip(configs, swept):
            direct = run_simulation(small_trace, config)
            assert direct.as_dict() == result.as_dict()

    def test_point_options_forwarded(self, small_trace):
        config = small_grid()[0]
        point = SweepPoint(config=config, trace=small_trace, cold_start=True)
        outcome = run_sweep_points([point], workers=1)
        direct = run_simulation(small_trace, config, cold_start=True)
        assert outcome.results[0].as_dict() == direct.as_dict()


class TestResultCache:
    def test_second_run_touches_zero_simulations(
        self, small_trace, tmp_path, monkeypatch
    ):
        configs = small_grid()
        calls = {"n": 0}
        real = sweep.run_simulation

        def counting(trace, config, **kwargs):
            calls["n"] += 1
            return real(trace, config, **kwargs)

        monkeypatch.setattr(sweep, "run_simulation", counting)
        cache = tmp_path / "cache"

        first = run_sweep(small_trace, configs, workers=1, cache_dir=cache)
        assert calls["n"] == len(configs)

        second = run_sweep(small_trace, configs, workers=1, cache_dir=cache)
        assert calls["n"] == len(configs)  # all served from disk
        for a, b in zip(first, second):
            assert a.as_dict() == b.as_dict()

    def test_cache_distinguishes_configs_and_options(
        self, small_trace, tmp_path
    ):
        config = small_grid()[0]
        cache = tmp_path / "cache"
        warm = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace)], cache_dir=cache
        )
        cold = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace, cold_start=True)],
            cache_dir=cache,
        )
        assert cold.reports[0].cached is False
        assert (
            cold.results[0].read_latency_us != warm.results[0].read_latency_us
            or cold.results[0].as_dict() != warm.results[0].as_dict()
        )

    def test_torn_cache_entry_is_a_miss(self, small_trace, tmp_path):
        config = small_grid()[0]
        cache = tmp_path / "cache"
        run_sweep(small_trace, [config], cache_dir=cache)
        for entry in cache.glob("*.result.pkl"):
            entry.write_bytes(b"torn")
        outcome = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace)], cache_dir=cache
        )
        assert outcome.reports[0].cached is False

    def test_progress_reports_cache_hits(self, small_trace, tmp_path):
        configs = small_grid()
        cache = tmp_path / "cache"
        run_sweep(small_trace, configs, cache_dir=cache)
        reports = []
        run_sweep(small_trace, configs, cache_dir=cache, progress=reports.append)
        assert len(reports) == len(configs)
        assert all(report.cached for report in reports)
        assert all(report.wall_seconds == 0.0 for report in reports)


class TestFallbackAndDefaults:
    def test_workers_1_never_builds_a_pool(self, small_trace, monkeypatch):
        import concurrent.futures as futures

        def explode(*args, **kwargs):
            raise AssertionError("workers=1 must stay in-process")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", explode)
        results = run_sweep(small_trace, small_grid(), workers=1)
        assert len(results) == len(small_grid())

    def test_pool_creation_failure_falls_back_to_serial(
        self, small_trace, monkeypatch
    ):
        class Broken:
            def __init__(self, *args, **kwargs):
                raise OSError("no process support")

        import concurrent.futures as futures

        monkeypatch.setattr(futures, "ProcessPoolExecutor", Broken)
        parallel = run_sweep(small_trace, small_grid(), workers=4)
        serial = run_sweep(small_trace, small_grid(), workers=1)
        for a, b in zip(parallel, serial):
            assert a.as_dict() == b.as_dict()

    def test_negative_workers_rejected(self, small_trace):
        with pytest.raises(ConfigError):
            run_sweep(small_trace, small_grid(), workers=-1)

    def test_default_workers_setter(self):
        try:
            sweep.set_default_workers(3)
            assert sweep.default_workers() == 3
            sweep.set_default_workers(0)  # 0 = all cores
            assert sweep.default_workers() >= 1
        finally:
            sweep.set_default_workers(None)

    def test_workers_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV, "5")
        assert sweep.default_workers() == 5
        monkeypatch.setenv(sweep.WORKERS_ENV, "banana")
        with pytest.raises(ConfigError):
            sweep.default_workers()


class TestProgress:
    def test_one_report_per_point_in_any_mode(self, small_trace):
        configs = small_grid()
        for workers in (1, 2):
            reports = []
            run_sweep(small_trace, configs, workers=workers, progress=reports.append)
            assert len(reports) == len(configs)
            assert sorted(report.index for report in reports) == list(
                range(len(configs))
            )
            assert [report.completed for report in reports] == list(
                range(1, len(configs) + 1)
            )
            assert all(report.total == len(configs) for report in reports)
            assert all(report.simulated_ns > 0 for report in reports)

    def test_labels_carried_through(self, small_trace):
        config = small_grid()[0]
        reports = []
        run_sweep_points(
            [SweepPoint(config=config, trace=small_trace, label="pt-a")],
            progress=reports.append,
        )
        assert reports[0].label == "pt-a"


class TestFingerprints:
    def test_trace_fingerprint_stable_across_pickle(self, small_trace):
        clone = pickle.loads(pickle.dumps(small_trace))
        clone.__dict__.pop("_sweep_fingerprint", None)
        assert trace_fingerprint(clone) == trace_fingerprint(small_trace)

    def test_different_traces_differ(self, small_trace):
        other = generate_trace(
            TraceGenConfig(
                fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
                working_set_bytes=4 * MB,
                seed=8,
            )
        )
        assert trace_fingerprint(other) != trace_fingerprint(small_trace)


class TestWithOverrides:
    def test_returns_modified_copy(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        changed = base.with_overrides(persistent_flash=True)
        assert changed.persistent_flash is True
        assert base.persistent_flash is False
        assert changed.ram_bytes == base.ram_bytes

    def test_unknown_field_raises_config_error(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        with pytest.raises(ConfigError, match="no_such_field"):
            base.with_overrides(no_such_field=1)

    def test_validation_still_runs(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        with pytest.raises(ConfigError):
            base.with_overrides(ram_bytes=-1)
