"""Tests for the parallel sweep engine (``repro.sweep``)."""

from __future__ import annotations

import pickle

import pytest

from repro import sweep
from repro._units import MB
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.core.simulator import run_simulation
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.sweep import (
    SweepPoint,
    run_sweep,
    run_sweep_points,
    trace_fingerprint,
)
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace


@pytest.fixture(scope="module")
def small_trace():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
        working_set_bytes=4 * MB,
        seed=7,
    )
    return generate_trace(config)


def small_grid():
    """A miniature figure2-style grid: architectures x flash sizes."""
    return [
        SimConfig(ram_bytes=1 * MB, flash_bytes=flash_mb * MB, architecture=arch)
        for arch in (Architecture.NAIVE, Architecture.UNIFIED)
        for flash_mb in (2, 8)
    ]


class TestSerialParallelEquality:
    def test_parallel_matches_serial_exactly(self, small_trace):
        configs = small_grid()
        serial = run_sweep(small_trace, configs, workers=1)
        parallel = run_sweep(small_trace, configs, workers=2)
        assert len(serial) == len(parallel) == len(configs)
        for expected, actual in zip(serial, parallel):
            assert expected.as_dict() == actual.as_dict()
            assert expected.simulated_ns == actual.simulated_ns

    def test_sweep_matches_direct_run_simulation(self, small_trace):
        configs = small_grid()
        swept = run_sweep(small_trace, configs, workers=2)
        for config, result in zip(configs, swept):
            direct = run_simulation(small_trace, config)
            assert direct.as_dict() == result.as_dict()

    def test_point_options_forwarded(self, small_trace):
        config = small_grid()[0]
        point = SweepPoint(config=config, trace=small_trace, cold_start=True)
        outcome = run_sweep_points([point], workers=1)
        direct = run_simulation(small_trace, config, cold_start=True)
        assert outcome.results[0].as_dict() == direct.as_dict()


class TestResultCache:
    def test_second_run_touches_zero_simulations(
        self, small_trace, tmp_path, monkeypatch
    ):
        configs = small_grid()
        calls = {"n": 0}
        real = sweep.run_simulation

        def counting(trace, config, **kwargs):
            calls["n"] += 1
            return real(trace, config, **kwargs)

        monkeypatch.setattr(sweep, "run_simulation", counting)
        cache = tmp_path / "cache"

        first = run_sweep(small_trace, configs, workers=1, cache_dir=cache)
        assert calls["n"] == len(configs)

        second = run_sweep(small_trace, configs, workers=1, cache_dir=cache)
        assert calls["n"] == len(configs)  # all served from disk
        for a, b in zip(first, second):
            assert a.as_dict() == b.as_dict()

    def test_cache_distinguishes_configs_and_options(
        self, small_trace, tmp_path
    ):
        config = small_grid()[0]
        cache = tmp_path / "cache"
        warm = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace)], cache_dir=cache
        )
        cold = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace, cold_start=True)],
            cache_dir=cache,
        )
        assert cold.reports[0].cached is False
        assert (
            cold.results[0].read_latency_us != warm.results[0].read_latency_us
            or cold.results[0].as_dict() != warm.results[0].as_dict()
        )

    def test_torn_cache_entry_is_a_miss(self, small_trace, tmp_path):
        config = small_grid()[0]
        cache = tmp_path / "cache"
        run_sweep(small_trace, [config], cache_dir=cache)
        for entry in cache.glob("*.result.pkl"):
            entry.write_bytes(b"torn")
        outcome = run_sweep_points(
            [SweepPoint(config=config, trace=small_trace)], cache_dir=cache
        )
        assert outcome.reports[0].cached is False

    def test_progress_reports_cache_hits(self, small_trace, tmp_path):
        configs = small_grid()
        cache = tmp_path / "cache"
        run_sweep(small_trace, configs, cache_dir=cache)
        reports = []
        run_sweep(small_trace, configs, cache_dir=cache, progress=reports.append)
        assert len(reports) == len(configs)
        assert all(report.cached for report in reports)
        assert all(report.wall_seconds == 0.0 for report in reports)


class TestFallbackAndDefaults:
    def test_workers_1_never_builds_a_pool(self, small_trace, monkeypatch):
        import concurrent.futures as futures

        def explode(*args, **kwargs):
            raise AssertionError("workers=1 must stay in-process")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", explode)
        results = run_sweep(small_trace, small_grid(), workers=1)
        assert len(results) == len(small_grid())

    def test_pool_creation_failure_falls_back_to_serial(
        self, small_trace, monkeypatch
    ):
        class Broken:
            def __init__(self, *args, **kwargs):
                raise OSError("no process support")

        import concurrent.futures as futures

        monkeypatch.setattr(futures, "ProcessPoolExecutor", Broken)
        parallel = run_sweep(small_trace, small_grid(), workers=4)
        serial = run_sweep(small_trace, small_grid(), workers=1)
        for a, b in zip(parallel, serial):
            assert a.as_dict() == b.as_dict()

    def test_negative_workers_rejected(self, small_trace):
        with pytest.raises(ConfigError):
            run_sweep(small_trace, small_grid(), workers=-1)

    def test_default_workers_setter(self):
        try:
            sweep.set_default_workers(3)
            assert sweep.default_workers() == 3
            sweep.set_default_workers(0)  # 0 = all cores
            assert sweep.default_workers() >= 1
        finally:
            sweep.set_default_workers(None)

    def test_workers_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV, "5")
        assert sweep.default_workers() == 5
        monkeypatch.setenv(sweep.WORKERS_ENV, "banana")
        with pytest.raises(ConfigError):
            sweep.default_workers()


class TestProgress:
    def test_one_report_per_point_in_any_mode(self, small_trace):
        configs = small_grid()
        for workers in (1, 2):
            reports = []
            run_sweep(small_trace, configs, workers=workers, progress=reports.append)
            assert len(reports) == len(configs)
            assert sorted(report.index for report in reports) == list(
                range(len(configs))
            )
            assert [report.completed for report in reports] == list(
                range(1, len(configs) + 1)
            )
            assert all(report.total == len(configs) for report in reports)
            assert all(report.simulated_ns > 0 for report in reports)

    def test_labels_carried_through(self, small_trace):
        config = small_grid()[0]
        reports = []
        run_sweep_points(
            [SweepPoint(config=config, trace=small_trace, label="pt-a")],
            progress=reports.append,
        )
        assert reports[0].label == "pt-a"


class TestFingerprints:
    def test_trace_fingerprint_stable_across_pickle(self, small_trace):
        clone = pickle.loads(pickle.dumps(small_trace))
        clone.__dict__.pop("_sweep_fingerprint", None)
        assert trace_fingerprint(clone) == trace_fingerprint(small_trace)

    def test_different_traces_differ(self, small_trace):
        other = generate_trace(
            TraceGenConfig(
                fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
                working_set_bytes=4 * MB,
                seed=8,
            )
        )
        assert trace_fingerprint(other) != trace_fingerprint(small_trace)


class TestWithOverrides:
    def test_returns_modified_copy(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        changed = base.with_overrides(persistent_flash=True)
        assert changed.persistent_flash is True
        assert base.persistent_flash is False
        assert changed.ram_bytes == base.ram_bytes

    def test_unknown_field_raises_config_error(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        with pytest.raises(ConfigError, match="no_such_field"):
            base.with_overrides(no_such_field=1)

    def test_validation_still_runs(self):
        base = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        with pytest.raises(ConfigError):
            base.with_overrides(ram_bytes=-1)


class TestSilentFailureFixes:
    """Regression tests for the silent-failure sweep: each of these
    failed (aborted sweeps or leaked files) before the fixes."""

    def test_unwritable_cache_warns_and_completes(self, small_trace, tmp_path):
        # Nest the cache dir under a regular *file*: every mkdir/write
        # raises NotADirectoryError (an OSError) regardless of
        # privileges, unlike chmod tricks that root bypasses.
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        configs = small_grid()[:2]
        with pytest.warns(RuntimeWarning, match="cache write"):
            results = run_sweep(
                small_trace, configs, workers=1, cache_dir=blocker / "cache"
            )
        assert len(results) == len(configs)
        assert all(result is not None for result in results)

    def test_cache_warning_issued_once_per_sweep(self, small_trace, tmp_path):
        import warnings as _warnings

        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            run_sweep(
                small_trace, small_grid(), workers=1, cache_dir=blocker / "cache"
            )
        cache_warnings = [w for w in caught if "cache write" in str(w.message)]
        assert len(cache_warnings) == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_progress_exception_does_not_abort(self, small_trace, workers):
        configs = small_grid()
        seen = []

        def exploding_progress(report):
            seen.append(report.index)
            raise ValueError("observer bug")

        with pytest.warns(RuntimeWarning, match="progress callback"):
            results = run_sweep(
                small_trace, configs, workers=workers, progress=exploding_progress
            )
        assert len(results) == len(configs)
        assert all(result is not None for result in results)
        # The callback kept being invoked (the failure is per-call, not fatal).
        assert len(seen) == len(configs)

    def test_progress_exception_result_parity(self, small_trace):
        def exploding_progress(report):
            raise ValueError("observer bug")

        clean = run_sweep(small_trace, small_grid(), workers=1)
        with pytest.warns(RuntimeWarning):
            noisy = run_sweep(
                small_trace, small_grid(), workers=1, progress=exploding_progress
            )
        for a, b in zip(clean, noisy):
            assert a.as_dict() == b.as_dict()

    def test_stale_spool_tmp_files_are_swept(self, small_trace, tmp_path):
        import os as _os
        import time as _time

        cache = tmp_path / "cache"
        spool = cache / "traces"
        spool.mkdir(parents=True)
        stale = spool / "deadbeef.pkl.abc123.tmp"
        stale.write_bytes(b"orphaned by a killed sweep")
        old = _time.time() - 2 * sweep._STALE_TMP_SECONDS
        _os.utime(stale, (old, old))
        stale_cache_entry = cache / "feedface.result.pkl.xyz.tmp"
        stale_cache_entry.write_bytes(b"orphan")
        _os.utime(stale_cache_entry, (old, old))
        fresh = spool / "cafe.pkl.def456.tmp"
        fresh.write_bytes(b"a concurrent sweep's in-flight write")

        run_sweep(small_trace, small_grid()[:1], workers=1, cache_dir=cache)

        assert not stale.exists()
        assert not stale_cache_entry.exists()
        assert fresh.exists()  # grace period protects live writers

    def test_failing_point_leaves_no_stray_spool(self, small_trace, tmp_path,
                                                 monkeypatch):
        import tempfile as _tempfile

        monkeypatch.setattr(_tempfile, "tempdir", str(tmp_path))
        # The registry validates eviction specs at construction time, so
        # smuggle the bad name in afterwards: the point must fail inside
        # the worker, mid-sweep, to exercise spool cleanup.
        bad = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        object.__setattr__(bad, "eviction_policy", "bogus")
        points = [
            SweepPoint(config=bad, trace=small_trace),
            SweepPoint(config=small_grid()[0], trace=small_trace),
        ]
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="eviction policy"):
            run_sweep_points(points, workers=2)
        strays = [
            entry
            for entry in tmp_path.iterdir()
            if entry.name.startswith("repro-sweep-")
        ]
        assert strays == []

    def test_pool_dropping_a_result_raises_instead_of_misaligning(
        self, small_trace, monkeypatch
    ):
        import concurrent.futures as futures

        class DroppingPool:
            """A pool whose map() silently loses the last task."""

            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, tasks, chunksize=1):
                tasks = list(tasks)
                for task in tasks[:-1]:
                    yield fn(task)

        monkeypatch.setattr(futures, "ProcessPoolExecutor", DroppingPool)
        with pytest.raises(RuntimeError, match="no result"):
            run_sweep(small_trace, small_grid(), workers=2)


class TestPointReportCounters:
    def test_counters_none_without_tracing(self, small_trace):
        reports = []
        run_sweep(small_trace, small_grid()[:1], progress=reports.append)
        assert reports[0].counters is None

    @pytest.mark.parametrize("workers", [1, 2])
    def test_counters_travel_back_from_workers(self, small_trace, workers):
        configs = [
            config.with_overrides(trace_events=True) for config in small_grid()
        ]
        reports = []
        results = run_sweep(
            small_trace, configs, workers=workers, progress=reports.append
        )
        for report in reports:
            assert report.counters is not None
            assert report.counters.get("request_start", 0) > 0
            assert report.counters["request_start"] == report.counters["request_finish"]
        by_index = {report.index: report for report in reports}
        for index, result in enumerate(results):
            assert result.breakdown is not None
            assert result.obs_counters == by_index[index].counters
