"""Lifecycle tests for the zero-copy shared-memory sweep fan-out.

Three properties are audited here, per ``repro.sweep``'s contract:

* **no leaked segments** — every ``repro-ct-*`` shared-memory segment a
  sweep publishes is unlinked on every exit path (normal completion, a
  failing point, a broken pool, Ctrl-C);
* **worker trace cache** — ``_WORKER_TRACE_CACHE`` is bounded, evicts
  oldest-first, and runs each evicted entry's cleanup (releasing buffer
  views before closing the mapping);
* **persistent pool** — the process-wide executor is reused across
  sweeps, resized on demand, bypassed by ``fresh_pool=True``, and
  retired idempotently by ``shutdown_pool()``.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro import sweep
from repro._units import MB
from repro.core.architectures import Architecture
from repro.core.config import SimConfig
from repro.errors import ReproError
from repro.fsmodel.impressions import ImpressionsConfig
from repro.sweep import SweepPoint, run_sweep, run_sweep_points, shutdown_pool
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.traces.compiled import CompiledTrace, compile_trace

from tests.helpers import make_trace, tiny_config

SHM_DIR = Path("/dev/shm")


def shm_names() -> set:
    """Names of live ``repro-ct-*`` segments (POSIX shm namespace)."""
    if not SHM_DIR.is_dir():
        pytest.skip("no /dev/shm to audit")
    return {entry.name for entry in SHM_DIR.glob("*repro-ct-*")}


needs_shm = pytest.mark.skipif(
    not sweep._shm_available(), reason="shared memory unavailable on this platform"
)


@pytest.fixture(scope="module")
def small_trace():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=48 * MB, max_file_bytes=4 * MB),
        working_set_bytes=4 * MB,
        seed=13,
    )
    return generate_trace(config)


def grid(n: int = 4):
    return [
        SimConfig(ram_bytes=1 * MB, flash_bytes=flash_mb * MB, architecture=arch)
        for arch in (Architecture.NAIVE, Architecture.UNIFIED)
        for flash_mb in (2, 4, 8)
    ][:n]


@needs_shm
class TestShmLifecycle:
    def test_normal_completion_leaks_nothing(self, small_trace):
        before = shm_names()
        results = run_sweep(small_trace, grid(), workers=2)
        assert len(results) == 4
        assert shm_names() == before

    def test_failing_point_leaks_nothing(self, small_trace):
        before = shm_names()
        # Eviction specs validate at construction time now; smuggle the
        # bad name in so the failure happens inside the worker.
        bad = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        object.__setattr__(bad, "eviction_policy", "bogus")
        points = [
            SweepPoint(config=bad, trace=small_trace),
            SweepPoint(config=grid(1)[0], trace=small_trace),
        ]
        with pytest.raises(ReproError, match="eviction policy"):
            run_sweep_points(points, workers=2)
        assert shm_names() == before

    def test_interrupt_leaks_nothing(self, small_trace, monkeypatch):
        """Ctrl-C mid-drain: segments are unlinked before the interrupt
        propagates (the pool here is a stand-in whose map() raises, so
        the unwind path is exercised deterministically)."""
        import concurrent.futures as futures

        class InterruptedPool:
            def __init__(self, max_workers):
                pass

            def map(self, fn, tasks, chunksize=1):
                raise KeyboardInterrupt()

            def shutdown(self, wait=True):
                pass

        before = shm_names()
        monkeypatch.setattr(futures, "ProcessPoolExecutor", InterruptedPool)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(small_trace, grid(), workers=2)
        assert shm_names() == before

    def test_broken_pool_discards_persistent_and_leaks_nothing(
        self, small_trace, monkeypatch
    ):
        """A worker crash surfaces as BrokenExecutor: the persistent pool
        must be discarded and every segment still unlinked."""
        import concurrent.futures as futures

        real_cls = futures.ProcessPoolExecutor
        # Seed a genuine persistent pool first.
        run_sweep(small_trace, grid(2), workers=2)
        assert sweep._POOL is not None

        crashed = futures.process.BrokenProcessPool("worker died")

        def exploding_map(self, fn, tasks, chunksize=1):
            raise crashed

        before = shm_names()
        monkeypatch.setattr(real_cls, "map", exploding_map)
        with pytest.raises(futures.process.BrokenProcessPool):
            run_sweep(small_trace, grid(), workers=2)
        assert sweep._POOL is None
        assert shm_names() == before

    def test_worker_attaches_zero_copy(self, small_trace):
        """Results through the shm fan-out match in-process replay."""
        parallel = run_sweep(small_trace, grid(), workers=2)
        serial = run_sweep(small_trace, grid(), workers=1)
        for a, b in zip(parallel, serial):
            assert a.as_dict() == b.as_dict()


class TestNoShmFallback:
    def test_env_disables_shm(self, small_trace, monkeypatch, tmp_path):
        import tempfile as _tempfile

        monkeypatch.setenv(sweep.NO_SHM_ENV, "1")
        monkeypatch.setattr(_tempfile, "tempdir", str(tmp_path))
        assert not sweep._shm_available()
        disabled = run_sweep(small_trace, grid(), workers=2)
        monkeypatch.delenv(sweep.NO_SHM_ENV)
        serial = run_sweep(small_trace, grid(), workers=1)
        for a, b in zip(disabled, serial):
            assert a.as_dict() == b.as_dict()
        # The disk spool the fallback used is removed with the sweep.
        strays = [
            entry
            for entry in tmp_path.iterdir()
            if entry.name.startswith("repro-sweep-")
        ]
        assert strays == []

    def test_zero_is_not_disabled(self, monkeypatch):
        monkeypatch.setenv(sweep.NO_SHM_ENV, "0")
        monkeypatch.setattr(sweep, "_shm_usable", True)
        assert sweep._shm_available()


class TestWorkerTraceCache:
    def test_eviction_is_oldest_first_and_runs_cleanup(self, monkeypatch, tmp_path):
        monkeypatch.setattr(sweep, "_WORKER_TRACE_CACHE", {})
        cache = sweep._WORKER_TRACE_CACHE
        released = []
        for i in range(sweep._WORKER_TRACE_CACHE_MAX):
            cache[("path", "fake-%d" % i)] = (
                object(),
                (lambda i=i: released.append(i)),
            )
        trace = make_trace([("r", 0)], file_blocks=16)
        spool = tmp_path / "t.pkl"
        spool.write_bytes(pickle.dumps(trace))
        loaded = sweep._load_trace_ref(("path", str(spool)))
        assert loaded.records == trace.records
        assert released == [0]  # exactly the oldest entry, exactly once
        assert len(cache) == sweep._WORKER_TRACE_CACHE_MAX
        assert ("path", "fake-0") not in cache

    def test_repeat_ref_is_memoized(self, monkeypatch, tmp_path):
        monkeypatch.setattr(sweep, "_WORKER_TRACE_CACHE", {})
        trace = make_trace([("w", 1)], file_blocks=16)
        spool = tmp_path / "t.pkl"
        spool.write_bytes(pickle.dumps(trace))
        first = sweep._load_trace_ref(("path", str(spool)))
        assert sweep._load_trace_ref(("path", str(spool))) is first

    @needs_shm
    def test_shm_ref_attach_and_drain(self, monkeypatch):
        from multiprocessing import shared_memory

        monkeypatch.setattr(sweep, "_WORKER_TRACE_CACHE", {})
        compiled = compile_trace(make_trace([("w", 0), ("r", 0)], file_blocks=16))
        payload = compiled.to_bytes()
        segment = shared_memory.SharedMemory(
            name=sweep._shm_segment_name("cachetest00"), create=True,
            size=len(payload),
        )
        try:
            segment.buf[: len(payload)] = payload
            ref = ("shm", segment.name, len(payload))
            attached = sweep._load_trace_ref(ref)
            assert isinstance(attached, CompiledTrace)
            assert attached.fingerprint == compiled.fingerprint
            assert sweep._load_trace_ref(ref) is attached
            # Draining releases the views, so closing cannot raise
            # BufferError and the segment can be unlinked cleanly.
            sweep._drain_worker_cache()
            assert sweep._WORKER_TRACE_CACHE == {}
        finally:
            segment.close()
            segment.unlink()

    def test_more_distinct_traces_than_cache_slots(self, small_trace):
        """A sweep shipping more unique traces than the per-worker cache
        holds still completes with correct per-point results."""
        n = sweep._WORKER_TRACE_CACHE_MAX + 2
        config = tiny_config()
        points = [
            SweepPoint(
                config=config,
                trace=make_trace(
                    [("w", i), ("r", i), ("r", i + 1)], file_blocks=64
                ),
                label="t%d" % i,
            )
            for i in range(n)
        ]
        outcome = run_sweep_points(points, workers=2)
        serial = run_sweep_points(points, workers=1)
        assert len(outcome.results) == n
        for a, b in zip(outcome.results, serial.results):
            assert a.as_dict() == b.as_dict()


class TestPersistentPool:
    def test_pool_reused_across_sweeps(self, small_trace):
        shutdown_pool()
        run_sweep(small_trace, grid(2), workers=2)
        pool = sweep._POOL
        assert pool is not None
        run_sweep(small_trace, grid(4), workers=2)
        assert sweep._POOL is pool

    def test_pool_resized_on_new_worker_count(self, small_trace):
        run_sweep(small_trace, grid(2), workers=2)
        first = sweep._POOL
        run_sweep(small_trace, grid(3), workers=3)
        assert sweep._POOL is not first
        assert sweep._POOL_WORKERS == 3

    def test_failing_point_keeps_pool_warm(self, small_trace):
        """A ReproError from one point is not pool poison: the warm
        workers survive for the next sweep."""
        shutdown_pool()
        run_sweep(small_trace, grid(2), workers=2)
        pool = sweep._POOL
        # Eviction specs validate at construction time now; smuggle the
        # bad name in so the failure happens inside the worker.
        bad = SimConfig(ram_bytes=1 * MB, flash_bytes=4 * MB)
        object.__setattr__(bad, "eviction_policy", "bogus")
        with pytest.raises(ReproError):
            run_sweep_points(
                [
                    SweepPoint(config=bad, trace=small_trace),
                    SweepPoint(config=grid(1)[0], trace=small_trace),
                ],
                workers=2,
            )
        assert sweep._POOL is pool

    def test_fresh_pool_leaves_persistent_untouched(self, small_trace):
        shutdown_pool()
        results = run_sweep(small_trace, grid(2), workers=2, fresh_pool=True)
        assert len(results) == 2
        assert sweep._POOL is None

    def test_shutdown_pool_idempotent(self, small_trace):
        run_sweep(small_trace, grid(2), workers=2)
        shutdown_pool()
        assert sweep._POOL is None
        shutdown_pool()  # second call is a no-op
        # And the engine recovers: next sweep spawns a new pool.
        run_sweep(small_trace, grid(2), workers=2)
        assert sweep._POOL is not None


@needs_shm
class TestPoolTeardownDrain:
    """Recycling the pool must not leave worker-side shm attachments
    alive: workers exit via ``os._exit`` (no atexit), and an *idle*
    persistent pool would otherwise pin already-unlinked segments."""

    def test_teardown_drain_reaches_every_worker(self, small_trace):
        shutdown_pool()
        run_sweep(small_trace, grid(2), workers=2)
        pool = sweep._POOL
        assert pool is not None
        pairs = sweep._drain_pool_caches(pool, 2)
        # Both workers report, and at least one held a cached attachment.
        assert len(pairs) == 2
        assert len({pid for pid, _ in pairs}) == 2
        assert sum(count for _, count in pairs) >= 1
        # Second drain proves the caches are now empty (no re-leak).
        pairs = sweep._drain_pool_caches(pool, 2)
        assert [count for _, count in pairs] == [0, 0]
        shutdown_pool()

    def test_shutdown_pool_drains_caches(self, small_trace, monkeypatch):
        shutdown_pool()
        run_sweep(small_trace, grid(2), workers=2)
        calls = []
        real = sweep._drain_pool_caches
        monkeypatch.setattr(
            sweep,
            "_drain_pool_caches",
            lambda pool, n: calls.append(n) or real(pool, n),
        )
        shutdown_pool()
        assert calls == [2]

    def test_fresh_pool_disposal_drains_caches(self, small_trace, monkeypatch):
        calls = []
        real = sweep._drain_pool_caches
        monkeypatch.setattr(
            sweep,
            "_drain_pool_caches",
            lambda pool, n: calls.append(n) or real(pool, n),
        )
        run_sweep(small_trace, grid(2), workers=2, fresh_pool=True)
        assert calls == [2]

    def test_drain_skips_stand_in_pools(self):
        class StandIn:
            pass

        assert sweep._drain_pool_caches(StandIn(), 2) == []
