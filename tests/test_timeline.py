"""Tests for the TimelineStat metric and its plumbing."""

import pytest

from repro._units import MS
from repro.core.metrics import TimelineStat
from repro.core.restart import RestartSpec
from repro.core.simulator import run_simulation

from tests.helpers import make_trace, tiny_config


class TestTimelineStat:
    def test_bucketing(self):
        timeline = TimelineStat(bucket_ns=1000)
        timeline.record(100, 10)
        timeline.record(900, 30)
        timeline.record(1500, 100)
        series = timeline.series()
        assert series == [(0, 20.0, 2), (1000, 100.0, 1)]

    def test_sorted_output(self):
        timeline = TimelineStat(bucket_ns=10)
        timeline.record(95, 1)
        timeline.record(5, 1)
        starts = [start for start, _mean, _count in timeline.series()]
        assert starts == sorted(starts)

    def test_len_counts_buckets(self):
        timeline = TimelineStat(bucket_ns=10)
        timeline.record(1, 1)
        timeline.record(2, 1)
        timeline.record(25, 1)
        assert len(timeline) == 2

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            TimelineStat(bucket_ns=0)


class TestPlumbing:
    def test_disabled_by_default(self):
        results = run_simulation(make_trace([("r", 0)]), tiny_config())
        assert results.read_timeline is None

    def test_enabled_collects_reads(self):
        trace = make_trace([("r", block) for block in range(20)])
        results = run_simulation(
            trace, tiny_config(), timeline_bucket_ns=int(1 * MS)
        )
        assert results.read_timeline is not None
        total = sum(count for _s, _m, count in results.read_timeline.series())
        assert total == 20

    def test_timeline_mean_matches_aggregate(self):
        trace = make_trace([("r", block) for block in range(30)])
        results = run_simulation(
            trace, tiny_config(), timeline_bucket_ns=int(100 * MS)
        )
        series = results.read_timeline.series()
        weighted = sum(mean * count for _s, mean, count in series)
        total = sum(count for _s, _m, count in series)
        assert weighted / total == pytest.approx(results.read_latency.mean_ns)

    def test_recovery_dip_visible(self):
        """After a volatile crash, the first buckets are slower than the
        last ones (the cache refills over time)."""
        trace = make_trace(
            [("r", block % 64) for block in range(400)], warmup=200
        )
        results = run_simulation(
            trace,
            tiny_config(),
            restart=RestartSpec.crash_volatile(),
            timeline_bucket_ns=int(5 * MS),
        )
        series = results.read_timeline.series()
        assert len(series) >= 2
        first_mean = series[0][1]
        last_mean = series[-1][1]
        assert first_mean > last_mean
