"""Tests for repro._units."""

import pytest

from repro._units import (
    BLOCK_SIZE,
    GB,
    KB,
    MB,
    MS,
    NS,
    SECOND,
    TB,
    US,
    blocks_for_bytes,
    format_bytes,
    format_time,
)


class TestConstants:
    def test_time_units_nest(self):
        assert US == 1_000 * NS
        assert MS == 1_000 * US
        assert SECOND == 1_000 * MS

    def test_size_units_nest(self):
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_block_size_is_4k(self):
        assert BLOCK_SIZE == 4096


class TestBlocksForBytes:
    def test_zero(self):
        assert blocks_for_bytes(0) == 0

    def test_rounds_up(self):
        assert blocks_for_bytes(1) == 1
        assert blocks_for_bytes(4096) == 1
        assert blocks_for_bytes(4097) == 2

    def test_exact_multiple(self):
        assert blocks_for_bytes(10 * BLOCK_SIZE) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_for_bytes(-1)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kb(self):
        assert format_bytes(256 * KB) == "256.0 KB"

    def test_gb(self):
        assert format_bytes(64 * GB) == "64.0 GB"

    def test_tb_does_not_overflow(self):
        assert format_bytes(5000 * TB) == "5000.0 TB"

    def test_negative(self):
        assert format_bytes(-4096) == "-4.0 KB"


class TestFormatTime:
    def test_ns(self):
        assert format_time(400) == "400 ns"

    def test_us(self):
        assert format_time(88_000) == "88.0 us"

    def test_ms(self):
        assert format_time(7_952_000) == "7.952 ms"

    def test_seconds(self):
        assert format_time(2 * SECOND) == "2.000 s"

    def test_negative(self):
        assert format_time(-400) == "-400 ns"
