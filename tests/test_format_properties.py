"""Property-based round-trip tests for trace serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.format import load_trace, save_trace
from repro.traces.records import Trace, TraceOp, TraceRecord

N_FILES = 4
FILE_BLOCKS = [64, 1, 1000, 17]


@st.composite
def trace_records(draw):
    file_id = draw(st.integers(min_value=0, max_value=N_FILES - 1))
    size = FILE_BLOCKS[file_id]
    offset = draw(st.integers(min_value=0, max_value=size - 1))
    nblocks = draw(st.integers(min_value=1, max_value=size - offset))
    return TraceRecord(
        draw(st.sampled_from([TraceOp.READ, TraceOp.WRITE])),
        draw(st.integers(min_value=0, max_value=7)),
        draw(st.integers(min_value=0, max_value=15)),
        file_id,
        offset,
        nblocks,
    )


@st.composite
def traces(draw):
    records = draw(st.lists(trace_records(), max_size=50))
    warmup = draw(st.integers(min_value=0, max_value=len(records)))
    keys = st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
    )
    values = st.text(
        alphabet=st.characters(blacklist_characters="\n\r", blacklist_categories=("Cs",)),
        max_size=20,
    )
    metadata = draw(st.dictionaries(keys, values, max_size=4))
    return Trace(records, FILE_BLOCKS, warmup_records=warmup, metadata=metadata)


@settings(max_examples=60, deadline=None)
@given(trace=traces(), binary=st.booleans())
def test_round_trip_preserves_everything(tmp_path_factory, trace, binary):
    path = tmp_path_factory.mktemp("rt") / "t.trace"
    save_trace(trace, path, binary=binary)
    loaded = load_trace(path)
    assert loaded.records == trace.records
    assert loaded.file_blocks == trace.file_blocks
    assert loaded.warmup_records == trace.warmup_records
    assert loaded.metadata == trace.metadata


@settings(max_examples=30, deadline=None)
@given(trace=traces())
def test_text_and_binary_agree(tmp_path_factory, trace):
    directory = tmp_path_factory.mktemp("agree")
    text_path = directory / "a.trace"
    bin_path = directory / "b.btrace"
    save_trace(trace, text_path)
    save_trace(trace, bin_path, binary=True)
    assert load_trace(text_path).records == load_trace(bin_path).records
