"""Tests for deterministic RNG streams."""

from repro.engine.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "filer") == derive_seed(1, "filer")

    def test_name_sensitivity(self):
        assert derive_seed(1, "filer") != derive_seed(1, "tracegen")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "filer") != derive_seed(2, "filer")

    def test_multi_part_names(self):
        assert derive_seed(1, "host", 0) != derive_seed(1, "host", 1)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        streams = RngStreams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_different_names_independent_sequences(self):
        streams = RngStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        first = [RngStreams(7).stream("s").random() for _ in range(3)]
        second = [RngStreams(7).stream("s").random() for _ in range(3)]
        assert first == second

    def test_consuming_one_stream_does_not_shift_another(self):
        streams_a = RngStreams(9)
        streams_a.stream("noise").random()  # consume from an unrelated stream
        value_after_noise = streams_a.stream("target").random()

        streams_b = RngStreams(9)
        value_clean = streams_b.stream("target").random()
        assert value_after_noise == value_clean
