"""Tests for the System replay driver (machine.py)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.machine import System, _stores_of
from repro.core.simulator import run_simulation
from repro.traces.records import Trace

from tests.helpers import make_trace, tiny_config


class TestConstruction:
    def test_hosts_get_private_segments_and_devices(self):
        system = System(tiny_config(), 3)
        assert len(system.hosts) == 3
        assert len(system.segments) == 3
        assert len({id(seg) for seg in system.segments}) == 3
        assert all(device is not None for device in system.flash_devices)

    def test_no_flash_means_no_devices(self):
        system = System(tiny_config(flash_bytes=0), 2)
        assert all(device is None for device in system.flash_devices)

    def test_zero_hosts_clamped_to_one(self):
        assert System(tiny_config(), 0).n_hosts == 1

    def test_stores_of_by_architecture(self):
        naive = System(tiny_config(), 1).hosts[0]
        assert [name for name, _ in _stores_of(naive)] == ["ram", "flash"]
        unified = System(tiny_config(architecture=Architecture.UNIFIED), 1).hosts[0]
        assert [name for name, _ in _stores_of(unified)] == ["unified"]


class TestReplayValidation:
    def test_trace_host_out_of_range(self):
        trace = make_trace([("r", 0, 5)])
        system = System(tiny_config(), 2)
        with pytest.raises(ValueError, match="host 5"):
            system.replay(trace)

    def test_run_simulation_sizes_hosts_from_trace(self):
        trace = make_trace([("r", 0, 0), ("r", 1, 3)])
        results = run_simulation(trace, tiny_config())
        assert results.read_latency.count == 2

    def test_empty_trace(self):
        results = run_simulation(Trace([], [16]), tiny_config())
        assert results.records_replayed == 0
        assert results.read_latency.count == 0


class TestWarmupBoundary:
    def test_boundary_at_warmup_volume(self):
        # 4 single-block records, 2 warmup: measurement starts once two
        # blocks' worth of volume has completed.
        trace = make_trace([("r", 0), ("r", 1), ("r", 2), ("r", 3)], warmup=2)
        system = System(tiny_config(), 1)
        system.replay(trace)
        assert system._measurement_started_at is not None
        assert system.measured_ns() > 0

    def test_no_warmup_measures_from_start(self):
        trace = make_trace([("r", 0)])
        system = System(tiny_config(), 1)
        system.replay(trace)
        assert system.metrics.measurement_start_ns == 0

    def test_filer_counters_cover_measurement_only(self):
        # Warmup read misses everything (1 filer read); the measured
        # read hits RAM (0 filer reads).
        trace = make_trace([("r", 0), ("r", 0)], warmup=1)
        system = System(tiny_config(), 1)
        system.replay(trace)
        assert system.filer.reads == 0

    def test_tier_stats_reset_at_boundary(self):
        trace = make_trace([("r", 0), ("r", 0)], warmup=1)
        results = run_simulation(trace, tiny_config())
        ram = results.tier_stats["ram"]
        assert ram["hits"] == 1
        assert ram["misses"] == 0  # the warmup miss is excluded


class TestAggregation:
    def test_tier_stats_summed_across_hosts(self):
        trace = make_trace([("r", 0, 0), ("r", 100, 1)])
        system = System(tiny_config(), 2)
        system.replay(trace)
        totals = system.aggregate_tier_stats()
        assert totals["ram"]["misses"] == 2

    def test_network_utilization_mean(self):
        system = System(tiny_config(), 2)
        assert system.mean_network_utilization() == 0.0

    def test_flash_traffic_totals(self):
        trace = make_trace([("r", 0, 0), ("r", 0, 1)])
        system = System(tiny_config(), 2)
        system.replay(trace)
        reads, writes = system.total_flash_traffic()
        assert writes == 2  # one fill per host
        assert reads == 0

    def test_write_amplification_none_without_ftl(self):
        system = System(tiny_config(), 1)
        assert system.mean_write_amplification() is None
