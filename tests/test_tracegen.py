"""Tests for the synthetic trace generator (the §4 properties)."""

import random

import pytest

from repro._units import MB
from repro.errors import ConfigError
from repro.fsmodel.impressions import ImpressionsConfig, generate_filesystem
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.tracegen.workingset import build_working_set
from repro.traces.stats import compute_stats


def small_config(**overrides):
    defaults = dict(
        fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
        working_set_bytes=8 * MB,
        seed=77,
    )
    defaults.update(overrides)
    return TraceGenConfig(**defaults)


@pytest.fixture(scope="module")
def baseline():
    config = small_config()
    return config, generate_trace(config)


class TestVolumeAndWarmup:
    def test_volume_reaches_target(self, baseline):
        config, trace = baseline
        stats = compute_stats(trace)
        assert stats.total_blocks >= config.target_volume_blocks
        # ... but does not wildly overshoot (at most one extra request).
        assert stats.total_blocks < config.target_volume_blocks * 1.05

    def test_warmup_half_of_volume(self, baseline):
        config, trace = baseline
        warmup_blocks = sum(r.nblocks for r in trace.records[: trace.warmup_records])
        assert warmup_blocks == pytest.approx(
            0.5 * config.target_volume_blocks, rel=0.05
        )


class TestDistributions:
    def test_write_fraction(self, baseline):
        _config, trace = baseline
        stats = compute_stats(trace)
        assert stats.write_fraction == pytest.approx(0.30, abs=0.02)

    def test_io_size_poisson_mean(self, baseline):
        config, trace = baseline
        stats = compute_stats(trace)
        # Poisson(4) clamped below at 1 and above at piece size: the mean
        # lands near 4.
        assert stats.mean_io_blocks == pytest.approx(config.io_mean_blocks, rel=0.15)

    def test_working_set_concentration(self, baseline):
        """80% of I/Os target the working set, which is ~1/8 of the file
        server, so accesses must concentrate heavily."""
        _config, trace = baseline
        stats = compute_stats(trace)
        # The top 20% of unique blocks should absorb well over half the
        # accesses in a working-set-driven trace.
        assert stats.concentration[0.2] > 0.5

    def test_footprint_between_ws_and_server(self, baseline):
        config, trace = baseline
        stats = compute_stats(trace)
        assert stats.footprint_bytes > config.working_set_bytes * 0.5
        assert stats.footprint_bytes < config.fs.total_bytes


class TestHostsAndThreads:
    def test_single_host_default(self, baseline):
        _config, trace = baseline
        assert trace.hosts() == [0]
        assert len(trace.threads_of(0)) == 8

    def test_uniform_thread_distribution(self, baseline):
        _config, trace = baseline
        stats = compute_stats(trace)
        counts = list(stats.records_per_thread.values())
        assert max(counts) < 1.5 * min(counts)

    def test_two_hosts(self):
        trace = generate_trace(small_config(n_hosts=2))
        assert trace.hosts() == [0, 1]
        stats = compute_stats(trace)
        ratio = stats.records_per_host[0] / stats.records_per_host[1]
        assert 0.8 < ratio < 1.25

    def test_shared_working_set_overlaps(self):
        """With a shared working set, the two hosts' footprints overlap
        heavily; with separate working sets, much less."""

        def overlap(shared):
            trace = generate_trace(
                small_config(n_hosts=2, shared_working_set=shared, seed=5)
            )
            per_host = {0: set(), 1: set()}
            for record in trace.records:
                per_host[record.host].update(trace.record_blocks(record))
            union = per_host[0] | per_host[1]
            return len(per_host[0] & per_host[1]) / len(union)

        assert overlap(True) > overlap(False) * 1.5


class TestDeterminismAndValidation:
    def test_same_seed_same_trace(self):
        first = generate_trace(small_config())
        second = generate_trace(small_config())
        assert first.records == second.records

    def test_different_seed_different_trace(self):
        first = generate_trace(small_config(seed=1))
        second = generate_trace(small_config(seed=2))
        assert first.records != second.records

    def test_records_respect_file_bounds(self, baseline):
        # Trace construction validates; this re-checks explicitly.
        _config, trace = baseline
        for record in trace.records:
            assert record.offset + record.nblocks <= trace.file_blocks[record.file_id]

    def test_metadata_recorded(self, baseline):
        _config, trace = baseline
        assert trace.metadata["write_fraction"] == "0.3"
        assert trace.metadata["n_hosts"] == "1"

    def test_ws_larger_than_fs_rejected(self):
        with pytest.raises(ConfigError):
            small_config(working_set_bytes=128 * MB)

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigError):
            small_config(write_fraction=1.5)
        with pytest.raises(ConfigError):
            small_config(warmup_fraction=1.0)


class TestWorkingSet:
    def test_reaches_target_blocks(self):
        model = generate_filesystem(
            ImpressionsConfig(total_bytes=32 * MB, max_file_bytes=4 * MB, seed=2)
        )
        ws = build_working_set(model, 1000, 64.0, random.Random(3))
        assert ws.total_blocks >= 1000

    def test_pieces_within_files(self):
        model = generate_filesystem(
            ImpressionsConfig(total_bytes=32 * MB, max_file_bytes=4 * MB, seed=2)
        )
        ws = build_working_set(model, 1000, 64.0, random.Random(3))
        for piece in ws.pieces:
            assert piece.start + piece.nblocks <= model[piece.file_id].blocks

    def test_sample_piece_weighted(self):
        model = generate_filesystem(
            ImpressionsConfig(total_bytes=32 * MB, max_file_bytes=4 * MB, seed=2)
        )
        ws = build_working_set(model, 2000, 64.0, random.Random(3))
        rng = random.Random(4)
        for _ in range(100):
            assert ws.sample_piece(rng) in ws.pieces

    def test_target_validation(self):
        model = generate_filesystem(ImpressionsConfig(total_bytes=8 * MB, seed=2))
        with pytest.raises(ConfigError):
            build_working_set(model, 0, 64.0, random.Random(1))
