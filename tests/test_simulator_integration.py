"""End-to-end integration tests: trace replay through run_simulation."""

import pytest

from repro._units import KB, MB
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace

from tests.helpers import (
    MISS_READ_NS,
    RAM_HIT_READ_NS,
    RAM_WRITE_NS,
    make_trace,
    tiny_config,
)


def small_trace(**overrides):
    defaults = dict(
        fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
        working_set_bytes=6 * MB,
        seed=11,
    )
    defaults.update(overrides)
    return generate_trace(TraceGenConfig(**defaults))


class TestMicroTraces:
    def test_single_read_latency(self):
        trace = make_trace([("r", 0)])
        results = run_simulation(trace, tiny_config())
        assert results.read_latency.count == 1
        assert results.read_latency.mean_ns == MISS_READ_NS

    def test_warmup_excluded_from_stats(self):
        trace = make_trace([("r", 0), ("r", 0)], warmup=1)
        results = run_simulation(trace, tiny_config())
        # Only the second (RAM hit) read is measured.
        assert results.read_latency.count == 1
        assert results.read_latency.mean_ns == RAM_HIT_READ_NS

    def test_write_latency(self):
        trace = make_trace([("w", 5)])
        results = run_simulation(trace, tiny_config())
        assert results.write_latency.count == 1
        assert results.write_latency.mean_ns == RAM_WRITE_NS

    def test_multi_block_record_counts_per_block(self):
        from repro.traces.records import Trace, TraceOp, TraceRecord

        trace = Trace([TraceRecord(TraceOp.READ, 0, 0, 0, 0, 4)], [100])
        results = run_simulation(trace, tiny_config())
        assert results.read_latency.count == 4
        assert results.read_request_latency.count == 1

    def test_hit_rates_reported(self):
        trace = make_trace([("r", 0), ("r", 0), ("r", 1)])
        results = run_simulation(trace, tiny_config())
        assert results.hit_rate("ram") == pytest.approx(1 / 3)
        assert results.hit_rate("unified") is None

    def test_cold_start_drops_warmup_records(self):
        trace = make_trace([("r", 0), ("r", 0)], warmup=1)
        warm = run_simulation(trace, tiny_config())
        cold = run_simulation(trace, tiny_config(), cold_start=True)
        assert warm.read_latency.mean_ns == RAM_HIT_READ_NS
        assert cold.read_latency.mean_ns == MISS_READ_NS


class TestHeadlineBehaviors:
    """The paper's qualitative results on small synthetic traces."""

    def test_flash_improves_read_latency(self):
        trace = small_trace()
        with_flash = run_simulation(trace, tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB))
        without = run_simulation(trace, tiny_config(ram_bytes=256 * KB, flash_bytes=0))
        assert with_flash.read_latency_us < without.read_latency_us * 0.8

    def test_bigger_flash_is_better(self):
        trace = small_trace()
        small = run_simulation(trace, tiny_config(ram_bytes=256 * KB, flash_bytes=2 * MB))
        large = run_simulation(trace, tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB))
        assert large.read_latency_us < small.read_latency_us

    def test_warm_cache_beats_cold(self):
        trace = small_trace()
        config = tiny_config(ram_bytes=256 * KB, flash_bytes=8 * MB)
        warm = run_simulation(trace, config)
        cold = run_simulation(trace, config, cold_start=True)
        assert warm.read_latency_us < cold.read_latency_us

    def test_writes_at_ram_speed_with_async_policy(self):
        trace = small_trace(write_fraction=0.5)
        results = run_simulation(trace, tiny_config())
        assert results.write_latency_us == pytest.approx(0.4, rel=0.5)

    def test_sync_policies_are_slow(self):
        trace = small_trace(write_fraction=0.5)
        fast_cfg = tiny_config()
        slow_cfg = tiny_config(
            ram_policy=WritebackPolicy.sync(), flash_policy=WritebackPolicy.sync()
        )
        fast = run_simulation(trace, fast_cfg)
        slow = run_simulation(trace, slow_cfg)
        assert slow.write_latency_us > fast.write_latency_us * 20

    def test_unified_effective_capacity_helps_reads(self):
        """With WS slightly over the flash size, unified's RAM+flash
        capacity yields a better flash-tier hit rate."""
        trace = small_trace(working_set_bytes=9 * MB)
        naive = run_simulation(
            trace, tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        )
        unified = run_simulation(
            trace,
            tiny_config(
                ram_bytes=1 * MB,
                flash_bytes=8 * MB,
                architecture=Architecture.UNIFIED,
            ),
        )
        assert unified.read_latency_us <= naive.read_latency_us * 1.05


class TestConsistencyIntegration:
    def test_two_hosts_sharing_blocks_invalidate(self):
        config = tiny_config()
        system = System(config, 2)

        def scenario():
            yield from system.hosts[1].read_block(0)
            yield from system.hosts[0].write_block(0)

        system.sim.run_until_complete(scenario())
        assert system.directory.writes_requiring_invalidation == 1
        assert 0 not in system.hosts[1].ram
        assert 0 not in system.hosts[1].flash

    def test_invalidated_block_is_refetched(self):
        config = tiny_config()
        system = System(config, 2)
        from tests.test_host_naive import timed

        timed(system, system.hosts[1].read_block(0))
        timed(system, system.hosts[0].write_block(0))
        # Host 1 must go to the filer again.
        assert timed(system, system.hosts[1].read_block(0)) == MISS_READ_NS

    def test_trace_level_invalidation_counting(self):
        trace = small_trace(n_hosts=2, shared_working_set=True, write_fraction=0.3)
        results = run_simulation(trace, tiny_config(ram_bytes=512 * KB, flash_bytes=8 * MB))
        assert results.block_writes > 0
        assert 0.0 < results.invalidation_fraction <= 1.0

    def test_shared_ws_invalidates_more_than_private(self):
        shared = small_trace(n_hosts=2, shared_working_set=True, seed=3)
        private = small_trace(n_hosts=2, shared_working_set=False, seed=3)
        config = tiny_config(ram_bytes=512 * KB, flash_bytes=8 * MB)
        shared_res = run_simulation(shared, config)
        private_res = run_simulation(private, config)
        assert (
            shared_res.invalidation_fraction
            > private_res.invalidation_fraction
        )


class TestResultsReporting:
    def test_summary_is_multiline_text(self):
        results = run_simulation(small_trace(), tiny_config())
        text = results.summary()
        assert "read latency" in text
        assert "filer" in text

    def test_as_dict_round_trips_to_json(self):
        import json

        results = run_simulation(small_trace(), tiny_config())
        assert json.loads(json.dumps(results.as_dict()))

    def test_filer_fast_rate_observed(self):
        trace = small_trace()
        results = run_simulation(trace, tiny_config())
        assert results.filer_reads == results.filer_fast_reads + results.filer_slow_reads

    def test_network_utilization_bounded(self):
        results = run_simulation(small_trace(), tiny_config())
        assert 0.0 <= results.network_utilization <= 1.0

    def test_simulated_time_positive(self):
        results = run_simulation(small_trace(), tiny_config())
        assert results.simulated_ns > 0
        assert 0 < results.measured_ns <= results.simulated_ns
