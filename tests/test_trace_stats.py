"""Tests for trace statistics."""

import pytest

from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.traces.stats import compute_stats


def build_trace():
    records = [
        TraceRecord(TraceOp.READ, 0, 0, 0, 0, 4),   # blocks 0-3
        TraceRecord(TraceOp.WRITE, 0, 1, 0, 0, 2),  # blocks 0-1 again
        TraceRecord(TraceOp.READ, 1, 0, 0, 10, 2),  # blocks 10-11
        TraceRecord(TraceOp.WRITE, 1, 1, 0, 0, 1),  # block 0 again
    ]
    return Trace(records, [100])


class TestComputeStats:
    def test_counts(self):
        stats = compute_stats(build_trace())
        assert stats.n_records == 4
        assert stats.n_reads == 2
        assert stats.n_writes == 2
        assert stats.write_fraction == pytest.approx(0.5)

    def test_block_volume(self):
        stats = compute_stats(build_trace())
        assert stats.total_blocks == 9
        assert stats.unique_blocks == 6  # {0,1,2,3,10,11}
        assert stats.total_bytes == 9 * 4096
        assert stats.footprint_bytes == 6 * 4096

    def test_io_sizes(self):
        stats = compute_stats(build_trace())
        assert stats.mean_io_blocks == pytest.approx(9 / 4)
        assert stats.max_io_blocks == 4

    def test_per_issuer_counts(self):
        stats = compute_stats(build_trace())
        assert stats.records_per_host == {0: 2, 1: 2}
        assert stats.records_per_thread[(0, 0)] == 1
        assert len(stats.records_per_thread) == 4

    def test_concentration_reflects_popularity(self):
        # Block 0 is accessed 3 times; with 6 unique blocks the top-20%
        # level keeps 1 block, so concentration = 3/9.
        stats = compute_stats(build_trace(), concentration_levels=(0.2,))
        assert stats.concentration[0.2] == pytest.approx(3 / 9)

    def test_empty_trace(self):
        stats = compute_stats(Trace([], [10]))
        assert stats.n_records == 0
        assert stats.mean_io_blocks == 0.0
        assert stats.concentration == {}

    def test_summary_mentions_key_numbers(self):
        text = compute_stats(build_trace()).summary()
        assert "4 (2 reads, 2 writes" in text
        assert "hosts:" in text
