"""Cross-architecture invariant tests.

Every host stack, whatever its placement strategy, must maintain the
same global invariants under arbitrary interleaved workloads:

* capacities are never exceeded;
* the consistency directory's holder sets match actual residency;
* invalidation empties every tier;
* no dirty data is silently dropped on the write path (every written
  block is either still dirty somewhere or was written to the filer).

Randomized with hypothesis over short op sequences on small caches,
where eviction/promotion churn is maximal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import KB
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy

from tests.helpers import tiny_config

ARCHITECTURES = list(Architecture)

OPS = st.lists(
    st.tuples(
        st.sampled_from(["r", "w"]),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=0, max_value=2),  # issuing pseudo-thread
    ),
    min_size=1,
    max_size=60,
)

POLICIES = st.sampled_from(["s", "a", "p0.001", "t0.001", "d0.001", "n"])


def build_system(architecture, ram_policy_label, flash_policy_label):
    config = tiny_config(
        architecture=architecture,
        ram_bytes=8 * KB,     # 2 blocks
        flash_bytes=16 * KB,  # 4 blocks
        ram_policy=WritebackPolicy.parse(ram_policy_label),
        flash_policy=WritebackPolicy.parse(flash_policy_label),
    )
    return System(config, 1)


def resident_blocks(host):
    blocks = set()
    for store_name in ("ram", "flash", "cache"):
        store = getattr(host, store_name, None)
        if store is not None:
            blocks.update(store.blocks())
    return blocks


def run_ops(system, ops):
    host = system.hosts[0]
    # Interleave by spawning one process per pseudo-thread.
    by_thread = {}
    for op, block, thread in ops:
        by_thread.setdefault(thread, []).append((op, block))

    def worker(sequence):
        for op, block in sequence:
            if op == "w":
                yield from host.write_block(block)
            else:
                yield from host.read_block(block)

    for sequence in by_thread.values():
        system.sim.spawn(worker(sequence))
    system.sim.run()
    return host


@settings(max_examples=60, deadline=None)
@given(
    architecture=st.sampled_from(ARCHITECTURES),
    ram_policy=POLICIES,
    flash_policy=POLICIES,
    ops=OPS,
)
def test_capacities_respected(architecture, ram_policy, flash_policy, ops):
    system = build_system(architecture, ram_policy, flash_policy)
    host = run_ops(system, ops)
    for store_name in ("ram", "flash", "cache"):
        store = getattr(host, store_name, None)
        if store is not None:
            assert len(store) <= store.capacity_blocks


@settings(max_examples=120, deadline=None)
@given(
    architecture=st.sampled_from(ARCHITECTURES),
    ram_policy=POLICIES,
    flash_policy=POLICIES,
    ops=OPS,
)
def test_directory_matches_residency(architecture, ram_policy, flash_policy, ops):
    system = build_system(architecture, ram_policy, flash_policy)
    host = run_ops(system, ops)
    resident = resident_blocks(host)
    for block in resident:
        assert 0 in system.directory.holders_of(block), (
            "resident block %d unknown to the directory" % block
        )


@settings(max_examples=40, deadline=None)
@given(
    architecture=st.sampled_from(ARCHITECTURES),
    ops=OPS,
)
def test_invalidation_empties_every_tier(architecture, ops):
    system = build_system(architecture, "a", "a")
    host = run_ops(system, ops)
    for block in list(resident_blocks(host)):
        host.drop_block(block)
    assert resident_blocks(host) == set()


@settings(max_examples=120, deadline=None)
@given(
    architecture=st.sampled_from(ARCHITECTURES),
    ops=OPS,
)
def test_exclusive_never_duplicates(architecture, ops):
    """Exclusivity holds for the migration stack; subset holds for the
    layered ones (clean RAM blocks whose fills came from reads)."""
    if architecture is not Architecture.EXCLUSIVE:
        return
    system = build_system(architecture, "a", "a")
    host = run_ops(system, ops)
    ram_blocks = set(host.ram.blocks())
    flash_blocks = set(host.flash.blocks())
    assert not (ram_blocks & flash_blocks)


@settings(max_examples=40, deadline=None)
@given(ops=OPS, ram_policy=POLICIES, flash_policy=POLICIES)
def test_no_write_is_silently_lost(ops, ram_policy, flash_policy):
    """Naive architecture: after the run drains, every block ever
    written is dirty in some tier, or the filer received at least one
    write for it... weaker global form: total writes that reached the
    filer plus still-dirty blocks plus invalidated/evicted-clean ones
    account for every written block.  We check the strong per-run
    conservation: if nothing is dirty anywhere, every written block's
    data reached the filer unless it was only ever overwritten in
    place (naive flash holds it clean after its flush)."""
    system = build_system(Architecture.NAIVE, ram_policy, flash_policy)
    host = run_ops(system, ops)
    written = {block for op, block, _t in ops if op == "w"}
    if not written:
        return
    for block in written:
        ram_entry = host.ram.peek(block)
        flash_entry = host.flash.peek(block)
        dirty_somewhere = bool(
            (ram_entry and ram_entry.dirty) or (flash_entry and flash_entry.dirty)
        )
        clean_somewhere = bool(
            (ram_entry and not ram_entry.dirty)
            or (flash_entry and not flash_entry.dirty)
        )
        reached_filer = system.filer.writes > 0
        # The block's latest data must be *somewhere* durable-ish: still
        # cached (dirty or clean-after-flush), or the filer saw writes.
        assert dirty_somewhere or clean_somewhere or reached_filer
