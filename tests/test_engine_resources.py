"""Tests for FIFO resources."""

import pytest

from repro.engine.resources import Resource
from repro.engine.simulation import Simulator
from repro.errors import SimulationError


def hold(sim, resource, duration, log, tag):
    yield resource.acquire()
    log.append(("start", tag, sim.now))
    yield duration
    resource.release()
    log.append(("end", tag, sim.now))


class TestResourceSerialization:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []
        sim.spawn(hold(sim, link, 100, log, "a"))
        sim.spawn(hold(sim, link, 100, log, "b"))
        sim.run()
        assert log == [
            ("start", "a", 0),
            ("end", "a", 100),
            ("start", "b", 100),
            ("end", "b", 200),
        ]

    def test_fifo_grant_order(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []
        for tag in ("a", "b", "c", "d"):
            sim.spawn(hold(sim, link, 10, log, tag))
        sim.run()
        starts = [entry[1] for entry in log if entry[0] == "start"]
        assert starts == ["a", "b", "c", "d"]

    def test_capacity_two_allows_overlap(self):
        sim = Simulator()
        pool = Resource(sim, capacity=2)
        log = []
        for tag in ("a", "b", "c"):
            sim.spawn(hold(sim, pool, 100, log, tag))
        sim.run()
        # a and b start immediately; c waits for the first release.
        assert ("start", "a", 0) in log
        assert ("start", "b", 0) in log
        assert ("start", "c", 100) in log

    def test_use_helper(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)

        def proc():
            yield from link.use(300)

        sim.spawn(proc())
        sim.run()
        assert sim.now == 300
        assert link.in_use == 0


class TestResourceAccounting:
    def test_acquisition_count(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []
        for tag in range(5):
            sim.spawn(hold(sim, link, 10, log, tag))
        sim.run()
        assert link.total_acquisitions == 5

    def test_utilization_full_busy(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []
        sim.spawn(hold(sim, link, 100, log, "a"))
        sim.spawn(hold(sim, link, 100, log, "b"))
        sim.run()
        assert link.utilization() == pytest.approx(1.0)

    def test_utilization_half_busy(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []

        def idle_then_use():
            yield 100
            yield from hold(sim, link, 100, log, "a")

        sim.spawn(idle_then_use())
        sim.run()
        assert link.utilization() == pytest.approx(0.5)

    def test_queue_length_visible(self):
        sim = Simulator()
        link = Resource(sim, capacity=1)
        log = []
        sim.spawn(hold(sim, link, 100, log, "a"))
        sim.spawn(hold(sim, link, 100, log, "b"))
        sim.spawn(hold(sim, link, 100, log, "c"))
        sim.run(until=50)
        assert link.queue_length == 2


class TestResourceErrors:
    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_release_without_acquire(self):
        link = Resource(Simulator(), capacity=1)
        with pytest.raises(SimulationError):
            link.release()
