"""White-box tests of the unified architecture (single LRU over RAM+flash)."""

import pytest

from repro._units import KB, MB
from repro.cache.block import Medium
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy

from tests.helpers import (
    FILER_WRITE_PATH_NS,
    FLASH_READ_NS,
    FLASH_WRITE_NS,
    RAM_READ_NS,
    RAM_WRITE_NS,
    tiny_config,
)
from tests.test_host_naive import timed


def unified_config(**overrides):
    return tiny_config(architecture=Architecture.UNIFIED, **overrides)


def media_census(host):
    counts = {Medium.RAM: 0, Medium.FLASH: 0}
    for block in host.cache.blocks():
        counts[host.cache.peek(block).medium] += 1
    return counts


class TestCapacityAndPlacement:
    def test_capacity_is_sum_of_media(self):
        config = unified_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        system = System(config, 1)
        assert system.hosts[0].cache.capacity_blocks == 256 + 2048

    def test_placement_proportional_to_media(self):
        config = unified_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        system = System(config, 1)
        host = system.hosts[0]

        def fill():
            for block in range(2304):  # exactly fill the cache
                yield from host.write_block(block)

        system.sim.run_until_complete(fill())
        counts = media_census(host)
        assert counts[Medium.RAM] == 256
        assert counts[Medium.FLASH] == 2048

    def test_ram_share_is_one_ninth_early(self):
        """'No attempt is made to prefer RAM to flash': while filling,
        RAM receives ~1/9 of insertions (1 MB of 9 MB total)."""
        config = unified_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        system = System(config, 1)
        host = system.hosts[0]

        def fill():
            for block in range(1152):  # half the cache
                yield from host.write_block(block)

        system.sim.run_until_complete(fill())
        counts = media_census(host)
        ram_share = counts[Medium.RAM] / (counts[Medium.RAM] + counts[Medium.FLASH])
        assert ram_share == pytest.approx(1 / 9, abs=0.04)

    def test_no_migration_between_media(self):
        config = unified_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        medium_before = host.cache.peek(0).medium
        for _ in range(5):
            timed(system, host.read_block(0))
            timed(system, host.write_block(0))
        assert host.cache.peek(0).medium is medium_before


class TestLatencies:
    def _single_block_system(self, medium_rng_outcome_seed=7):
        return System(unified_config(ram_bytes=1 * MB, flash_bytes=8 * MB), 1)

    def test_hit_latency_matches_medium(self):
        system = self._single_block_system()
        host = system.hosts[0]

        def fill():
            for block in range(200):
                yield from host.write_block(block)

        system.sim.run_until_complete(fill())
        for block in range(200):
            medium = host.cache.peek(block).medium
            expected = RAM_READ_NS if medium is Medium.RAM else FLASH_READ_NS
            assert timed(system, host.read_block(block)) == expected

    def test_write_latency_matches_medium(self):
        system = self._single_block_system()
        host = system.hosts[0]
        timed(system, host.write_block(0))
        medium = host.cache.peek(0).medium
        expected = RAM_WRITE_NS if medium is Medium.RAM else FLASH_WRITE_NS
        assert timed(system, host.write_block(0)) == expected

    def test_mean_write_latency_is_mostly_flash(self):
        """§7.1: "since only 1/9 of the data is placed in RAM and the
        rest in flash, on average we see 8/9 of the 21 us flash latency."""
        system = self._single_block_system()
        host = system.hosts[0]
        total = 0
        n = 300
        for block in range(n):
            total += timed(system, host.write_block(block))
        mean = total / n
        expected = (1 / 9) * RAM_WRITE_NS + (8 / 9) * FLASH_WRITE_NS
        assert mean == pytest.approx(expected, rel=0.15)


class TestPolicies:
    def test_policy_follows_buffer_medium(self):
        """Dirty RAM-buffer blocks follow the RAM policy, dirty
        flash-buffer blocks the flash policy."""
        config = unified_config(
            ram_bytes=1 * MB,
            flash_bytes=8 * MB,
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.sync(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(100):
            duration = timed(system, host.write_block(block))
            medium = host.cache.peek(block).medium
            if medium is Medium.FLASH:
                # sync policy: charged the filer round trip
                assert duration == FLASH_WRITE_NS + FILER_WRITE_PATH_NS
                assert not host.cache.peek(block).dirty
            else:
                assert duration == RAM_WRITE_NS
                assert host.cache.peek(block).dirty

    def test_eviction_writes_back_dirty_victim(self):
        config = unified_config(
            ram_bytes=4 * KB,
            flash_bytes=8 * KB,  # 3 buffers total
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(3):
            timed(system, host.write_block(block))
        assert system.filer.writes == 0
        timed(system, host.write_block(3))  # evicts a dirty victim
        assert system.filer.writes == 1

    def test_per_medium_syncers_flush_their_medium(self):
        """RAM-buffer dirt follows the RAM policy's syncer; flash-buffer
        dirt follows the flash policy's — here only the RAM syncer runs."""
        config = unified_config(
            ram_bytes=1 * MB,
            flash_bytes=8 * MB,
            ram_policy=WritebackPolicy.periodic(0.001),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(60):
            timed(system, host.write_block(block))
        ram_dirty_before = sum(
            1
            for block in host.cache.dirty_blocks()
            if host.cache.peek(block).medium is Medium.RAM
        )
        flash_dirty_before = host.cache.dirty_count - ram_dirty_before
        assert flash_dirty_before > 0

        host.keep_running = lambda: system.sim.now < 3_000_000
        host.start_syncers()
        system.sim.run()

        remaining = host.cache.dirty_blocks()
        assert all(
            host.cache.peek(block).medium is Medium.FLASH for block in remaining
        )
        assert len(remaining) == flash_dirty_before

    def test_drop_block_releases_buffer(self):
        config = unified_config(ram_bytes=4 * KB, flash_bytes=8 * KB)
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(3):
            timed(system, host.write_block(block))
        host.drop_block(1)
        assert 1 not in host.cache
        # The freed buffer is reusable without eviction.
        timed(system, host.write_block(9))
        assert 9 in host.cache
        assert host.cache.stats.evictions == 0
