"""Tests for the reporting helpers (ASCII charts, markdown)."""

import pytest

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.report.ascii_chart import line_chart
from repro.report.markdown import experiment_to_markdown, results_chart


def sample_result():
    result = ExperimentResult(
        experiment="figX",
        title="Demo",
        columns=("ws_gb", "noflash_us", "flash_us", "label"),
        notes="a note",
    )
    result.add_row(ws_gb=5.0, noflash_us=233.0, flash_us=226.0, label="a")
    result.add_row(ws_gb=60.0, noflash_us=814.0, flash_us=274.0, label="b")
    result.add_row(ws_gb=320.0, noflash_us=910.0, flash_us=537.0, label="c")
    return result


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]})
        assert "*" in chart
        assert "o" in chart
        assert "* one" in chart
        assert "o two" in chart

    def test_extremes_land_on_edges(self):
        chart = line_chart({"s": [(0, 0), (10, 100)]}, width=20, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        # max y in the top plot row, min y in the bottom plot row
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_axis_ticks_present(self):
        chart = line_chart({"s": [(5, 100), (320, 900)]})
        assert "900" in chart
        assert "100" in chart
        assert "5.00" in chart
        assert "320" in chart

    def test_title_and_labels(self):
        chart = line_chart(
            {"s": [(0, 1), (1, 2)]}, title="My Title", x_label="GB", y_label="us"
        )
        assert "My Title" in chart
        assert "[x: GB, y: us]" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in chart

    def test_single_point(self):
        chart = line_chart({"p": [(1, 1)]})
        assert "*" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            line_chart({})
        with pytest.raises(ReproError):
            line_chart({"s": []})

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            line_chart({"s": [(0, 0)]}, width=4)

    def test_many_series_cycle_markers(self):
        series = {"s%d" % i: [(0, i), (1, i + 1)] for i in range(10)}
        chart = line_chart(series)
        assert "s9" in chart


class TestMarkdown:
    def test_table_structure(self):
        text = experiment_to_markdown(sample_result())
        assert text.startswith("## figX — Demo")
        assert "| ws_gb | noflash_us | flash_us | label |" in text
        assert "| 5.00 | 233.00 | 226.00 | a |" in text
        assert "*a note*" in text

    def test_row_count(self):
        text = experiment_to_markdown(sample_result())
        data_rows = [line for line in text.splitlines() if line.startswith("| 5") or line.startswith("| 6") or line.startswith("| 3")]
        assert len(data_rows) == 3


class TestResultsChart:
    def test_defaults_to_numeric_columns(self):
        chart = results_chart(sample_result(), "ws_gb")
        assert "noflash_us" in chart
        assert "flash_us" in chart
        assert "label" not in chart.split("\n")[-1].split("[")[0].replace(
            "x: ws_gb", ""
        )

    def test_explicit_columns(self):
        chart = results_chart(sample_result(), "ws_gb", ["flash_us"])
        assert "flash_us" in chart
        assert "noflash_us" not in chart

    def test_unknown_x_rejected(self):
        with pytest.raises(ReproError):
            results_chart(sample_result(), "nope")

    def test_non_numeric_x_rejected(self):
        with pytest.raises(ReproError):
            results_chart(sample_result(), "label")

    def test_real_experiment_renders(self):
        from repro.experiments import figure4

        result = figure4.run(scale=65536, ws_sweep=(5.0, 60.0))
        chart = results_chart(result, "ws_gb")
        assert "noflash_us" in chart
