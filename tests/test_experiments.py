"""Smoke + shape tests for every experiment module.

Each figure runs at a very coarse scale (divisor 65536, i.e. GB→16 KB)
with reduced sweeps so the whole file stays fast; the full-fidelity
shape assertions live in the benchmarks.  Here we check that every
experiment produces its advertised columns and that the cheapest,
most robust shape properties hold even at tiny scale.
"""

import pytest

from repro.experiments import (
    consistency_traffic,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    section74,
    sensitivity,
    table1,
    tail_latency,
)
from repro.experiments.common import (
    ExperimentResult,
    baseline_config,
    baseline_trace,
    scaled_gb,
    scaled_policy,
)
from repro.core.policies import WritebackPolicy

#: Tiny geometry for smoke tests: GB -> 16 KB.
SCALE = 65536
WS = (5.0, 60.0, 80.0, 160.0)


class TestCommonHelpers:
    def test_scaled_gb(self):
        assert scaled_gb(64.0, 1024) == 64 * 1024 * 1024
        assert scaled_gb(0.0) == 0

    def test_scaled_gb_floors_at_one_block(self):
        assert scaled_gb(0.001, 10**9) == 4096

    def test_scaled_policy_divides_period(self):
        policy = scaled_policy(WritebackPolicy.periodic(30), 1000)
        assert policy.period_ns == 30_000_000_000 // 1000

    def test_scaled_policy_passthrough(self):
        policy = WritebackPolicy.asynchronous()
        assert scaled_policy(policy, 1000) is policy

    def test_baseline_config_scales_policy(self):
        config = baseline_config(scale=1024)
        assert config.ram_policy.period_ns < 1_000_000_000

    def test_baseline_trace_cached(self):
        first = baseline_trace(ws_gb=5.0, scale=SCALE)
        second = baseline_trace(ws_gb=5.0, scale=SCALE)
        assert first is second

    def test_experiment_result_table(self):
        result = ExperimentResult("figX", "demo", ("a", "b"))
        result.add_row(a=1, b=2.5)
        table = result.format_table()
        assert "figX" in table
        assert "2.50" in table
        assert result.column("a") == [1]


def assert_columns(result, module_name):
    assert result.rows, "%s produced no rows" % module_name
    for row in result.rows:
        for column in result.columns:
            assert column in row, "%s row missing %s" % (module_name, column)


class TestTable1:
    def test_all_parameters_present(self):
        result = table1.run()
        assert_columns(result, "table1")
        assert len(result.rows) == 10


class TestFigure1:
    def test_series_shape(self):
        result = figure1.run(scale=1024, fast=True)
        assert_columns(result, "figure1")
        reads = result.column("read_us")
        writes = result.column("write_us")
        # Reads slower than writes throughout; reads drift upward.
        assert all(r > w for r, w in zip(reads, writes))
        assert reads[-1] > reads[0]


class TestFigure2:
    def test_grid_covers_architectures(self):
        result = figure2.run(scale=SCALE, fast=True)
        assert_columns(result, "figure2")
        assert len(result.rows) == 3 * 4 * 4
        archs = set(result.column("arch"))
        assert archs == {"naive", "lookaside", "unified"}

    def test_sync_chain_is_worst_write_case_per_arch(self):
        result = figure2.run(scale=SCALE, fast=True)
        for arch in ("naive", "lookaside"):
            rows = [r for r in result.rows if r["arch"] == arch]
            ss = next(
                r for r in rows if r["ram_policy"] == "s" and r["flash_policy"] == "s"
            )
            aa = next(
                r for r in rows if r["ram_policy"] == "a" and r["flash_policy"] == "a"
            )
            assert ss["write_us"] > 10 * aa["write_us"]


class TestFigure3:
    def test_ramspeed_curves_close(self):
        result = figure3.run(scale=SCALE, ws_sweep=WS)
        assert_columns(result, "figure3")
        for row in result.rows:
            # Equal effective capacity: within 15% of each other.
            assert row["naive_ramspeed_us"] == pytest.approx(
                row["unified_56_ramspeed_us"], rel=0.30
            )

    def test_real_flash_never_faster_than_ramspeed(self):
        result = figure3.run(scale=SCALE, ws_sweep=WS)
        for row in result.rows:
            assert row["naive_flash_us"] >= row["naive_ramspeed_us"] * 0.95


class TestFigure4:
    def test_flash_ordering(self):
        result = figure4.run(scale=SCALE, ws_sweep=WS)
        assert_columns(result, "figure4")
        for row in result.rows:
            assert row["noflash_us"] >= row["flash64_us"] * 0.95
            assert row["flash32_us"] >= row["flash128_us"] * 0.95

    def test_flash_win_largest_when_ws_fits(self):
        result = figure4.run(scale=SCALE, ws_sweep=WS)
        by_ws = {row["ws_gb"]: row for row in result.rows}
        win_fits = by_ws[60.0]["noflash_us"] / by_ws[60.0]["flash64_us"]
        win_huge = by_ws[160.0]["noflash_us"] / by_ws[160.0]["flash64_us"]
        assert win_fits > win_huge


class TestFigure5:
    def test_prefetch_dominates(self):
        result = figure5.run(scale=SCALE, ws_sweep=WS)
        assert_columns(result, "figure5")
        for row in result.rows:
            assert row["noflash_p80_us"] > row["noflash_p95_us"]
            assert row["flash64_p80_us"] > row["flash64_p95_us"]


class TestFigures6And7:
    GB = 1024**3
    MB = 1024**2

    def test_zero_ram_exposes_flash_write_latency(self):
        result = figure6.run(scale=16384, ram_sweep_paper_bytes=(0, 8 * self.GB))
        assert_columns(result, "figure6")
        no_ram, baseline = result.rows
        # "The no-RAM configuration does not work well": writes land on
        # the flash directly (21 us) instead of RAM (0.4 us).
        assert no_ram["write_a_us"] > 10 * baseline["write_a_us"]

    def test_small_ram_write_buffer_suffices_with_async(self):
        result = figure6.run(
            scale=16384, ram_sweep_paper_bytes=(256 * self.MB, 8 * self.GB)
        )
        small, large = result.rows
        assert small["ram_blocks"] < large["ram_blocks"] / 8
        assert small["write_a_us"] == pytest.approx(large["write_a_us"], rel=0.2)
        # ... while the periodic policy needs more RAM to absorb dirt.
        assert small["write_p1_us"] > small["write_a_us"]

    def test_figure7_uses_small_ws(self):
        result = figure7.run(scale=SCALE, ram_sweep_paper_bytes=(0, 8 * self.GB))
        assert result.experiment == "figure7"
        assert_columns(result, "figure7")


class TestFigure8:
    def test_read_latency_stable_at_moderate_write_ratios(self):
        result = figure8.run(scale=SCALE, write_sweep=(0.1, 0.3, 0.6))
        assert_columns(result, "figure8")
        reads = result.column("read60_us")
        assert max(reads) < 2.0 * min(reads)


class TestFigure9:
    # Flash-timing differences are tens of µs; at the coarsest scale a
    # single slow filer read shifts the mean more than that, so this
    # smoke test uses a finer (but still fast) scale.
    def test_latency_increases_with_flash_read_time(self):
        result = figure9.run(scale=16384, read_us_sweep=(1, 88))
        assert_columns(result, "figure9")
        fast_row, slow_row = result.rows
        for column in result.columns:
            if column == "flash_read_us":
                continue
            assert slow_row[column] > fast_row[column] * 0.95
        assert slow_row["naive60_us"] > fast_row["naive60_us"]


class TestFigure10:
    def test_warm_beats_cold(self):
        result = figure10.run(scale=16384, ws_sweep=(40.0, 60.0))
        assert_columns(result, "figure10")
        for row in result.rows:
            assert row["flash_warm_us"] < row["flash_cold_us"]

    def test_persistence_cost_invisible_on_writes(self):
        plain, persistent = figure10.persistence_cost(scale=16384, ws_gb=40.0)
        assert persistent.write_latency_us == pytest.approx(
            plain.write_latency_us, rel=0.05
        )
        # Reads carry sampling noise from which filer reads are slow;
        # the benches check the tighter bound at full bench scale.
        assert persistent.read_latency_us == pytest.approx(
            plain.read_latency_us, rel=0.35
        )


class TestFigure11:
    def test_invalidation_grows_with_flash(self):
        result = figure11.run(scale=SCALE, write_sweep=(0.3,))
        assert_columns(result, "figure11")
        row = result.rows[0]
        assert row["inval_flash80_pct"] >= row["inval_noflash80_pct"]


class TestFigure12:
    def test_flash_retains_invalidations_longer(self):
        result = figure12.run(scale=SCALE, ws_sweep=(60.0, 160.0))
        assert_columns(result, "figure12")
        small, large = result.rows
        assert small["inval_flash_pct"] > 0
        # Out of cache, the big flash still catches invalidations the
        # small RAM cache no longer sees.
        assert large["inval_flash_pct"] >= large["inval_noflash_pct"]


class TestExtensionExperimentsSmoke:
    """Structure smoke tests for the extension experiments (their shape
    assertions live in the benchmarks at bench scale)."""

    def test_section74(self):
        result = section74.run(scale=SCALE, flash_sweep_gb=(8.0, 64.0))
        assert_columns(result, "section74")
        small, large = result.rows
        assert large["hit60_pct"] >= small["hit60_pct"]

    def test_tail_latency(self):
        result = tail_latency.run(scale=SCALE, flash_sizes_gb=(0.0, 64.0))
        assert_columns(result, "tail_latency")
        noflash, flash = result.rows
        assert flash["mean_us"] <= noflash["mean_us"] * 1.05
        for row in result.rows:
            assert row["p99_us"] >= row["p50_us"]

    def test_sensitivity(self):
        result = sensitivity.run(
            scale=SCALE, ws_fractions=(0.8,), thread_counts=(8,)
        )
        assert_columns(result, "sensitivity")
        assert result.rows[0]["flash_win"] > 1.0

    def test_consistency_traffic(self):
        result = consistency_traffic.run(scale=SCALE, grid=((2, 0.30),))
        assert_columns(result, "consistency_traffic")
        row = result.rows[0]
        assert row["read_modeled_us"] >= row["read_counted_us"] * 0.9
