"""Fleet-scale consistency: sharding properties, the directory latency
model, and the multi-tenant scenario family."""

import random
from dataclasses import replace

import pytest

from repro._units import MB
from repro.core.consistency import ConsistencyDirectory
from repro.core.machine import System
from repro.core.simulator import run_simulation
from repro.engine.compiled import kernel_eligible
from repro.errors import ConfigError
from repro.net.directory import DirectoryTiming
from repro.tracegen.fleet import SCENARIOS, FleetSpec, fleet_trace
from repro.traces.records import Trace, TraceOp, TraceRecord

from tests.helpers import tiny_config


def _random_ops(rng, n_hosts, n_blocks, n_ops):
    """A reproducible interleaving of directory operations."""
    ops = []
    for _ in range(n_ops):
        kind = rng.randrange(3)
        host = rng.randrange(n_hosts)
        block = rng.randrange(n_blocks)
        ops.append((kind, host, block, rng.random() < 0.7))
    return ops


def _apply(directory, ops):
    for kind, host, block, measured in ops:
        if kind == 0:
            directory.note_copy(host, block)
        elif kind == 1:
            directory.note_drop(host, block)
        else:
            directory.on_block_write(host, block, measured)


class TestShardingProperties:
    def test_invalidating_writes_never_exceed_block_writes(self):
        rng = random.Random(0xF1EE7)
        for trial in range(20):
            directory = ConsistencyDirectory(8)
            _apply(directory, _random_ops(rng, 8, 64, 400))
            assert (
                directory.writes_requiring_invalidation <= directory.block_writes
            )
            assert directory.copies_invalidated >= (
                directory.writes_requiring_invalidation
            )

    def test_shard_counters_sum_to_totals(self):
        rng = random.Random(0xC0FFEE)
        directory = ConsistencyDirectory(16, n_shards=8)
        _apply(directory, _random_ops(rng, 16, 128, 600))
        writes, requiring, copies = (
            sum(column) for column in zip(*directory.shard_counters())
        )
        assert writes == directory.block_writes
        assert requiring == directory.writes_requiring_invalidation
        assert copies == directory.copies_invalidated

    def test_sharded_matches_unsharded_on_same_ops(self):
        rng = random.Random(0x5EED)
        ops = _random_ops(rng, 12, 200, 1000)
        single = ConsistencyDirectory(12, n_shards=1)
        sharded = ConsistencyDirectory(12, n_shards=16)
        single_drops = {h: [] for h in range(12)}
        sharded_drops = {h: [] for h in range(12)}
        for host in range(12):
            single.register_host(host, single_drops[host].append)
            sharded.register_host(host, sharded_drops[host].append)
        _apply(single, ops)
        _apply(sharded, ops)
        assert single_drops == sharded_drops
        assert single.block_writes == sharded.block_writes
        assert (
            single.writes_requiring_invalidation
            == sharded.writes_requiring_invalidation
        )
        assert single.copies_invalidated == sharded.copies_invalidated
        for block in range(200):
            assert single.holders_of(block) == sharded.holders_of(block)

    def test_shard_count_defaults(self):
        assert ConsistencyDirectory(2).n_shards == 1
        assert ConsistencyDirectory(1000).n_shards == 64

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ConsistencyDirectory(4, n_shards=3)

    def test_thousand_host_system_builds(self):
        system = System(tiny_config(), 1000)
        assert system.directory.n_shards == 64
        assert len(system.hosts) == 1000
        # Slotted host stacks: no per-instance dict on the plain paths.
        assert not hasattr(system.hosts[0], "__dict__")


class TestDirectoryTiming:
    def test_defaults_are_instant(self):
        timing = DirectoryTiming.paper_default()
        assert timing.is_instant
        assert tiny_config().timing.directory.is_instant

    def test_rejects_negative_latencies(self):
        with pytest.raises(ConfigError):
            DirectoryTiming(lookup_ns=-1)
        with pytest.raises(ConfigError):
            DirectoryTiming(invalidate_ns=-1)

    def _shared_write_trace(self):
        """Two hosts ping-pong writes over one shared file: every
        measured write by one host invalidates the other's copy."""
        records = []
        for round_index in range(40):
            for host in (0, 1):
                records.append(TraceRecord(TraceOp.READ, host, 0, 0, 0, 4))
                records.append(TraceRecord(TraceOp.WRITE, host, 0, 0, 0, 4))
        return Trace(records, [16], warmup_records=len(records) // 2)

    def _modeled_config(self):
        config = tiny_config()
        return replace(
            config,
            timing=config.timing.with_directory(
                DirectoryTiming(lookup_ns=5_000, invalidate_ns=20_000)
            ),
        )

    def test_instant_default_reports_zero_stall(self):
        results = run_simulation(self._shared_write_trace(), tiny_config())
        assert results.invalidation_latency_ns == 0

    def test_modeled_latency_surfaces_in_results(self):
        results = run_simulation(self._shared_write_trace(), self._modeled_config())
        assert results.writes_requiring_invalidation > 0
        assert results.invalidation_latency_ns > 0
        # Every measured write pays at least the lookup; invalidating
        # writes add a per-victim charge on top.
        floor = results.block_writes * 5_000 + (
            results.copies_invalidated * 20_000
        )
        assert results.invalidation_latency_ns == floor

    def test_modeled_latency_slows_writes(self):
        trace = self._shared_write_trace()
        instant = run_simulation(trace, tiny_config())
        modeled = run_simulation(trace, self._modeled_config())
        assert modeled.write_latency_us > instant.write_latency_us

    def test_breakdown_attributes_invalidation_component(self):
        from repro.obs import Observation

        obs = Observation()
        run_simulation(self._shared_write_trace(), self._modeled_config(), obs=obs)
        breakdown = obs.breakdown
        assert breakdown.write_ns["invalidation"] > 0
        assert breakdown.unattributed_ns == 0

    def test_modeled_latency_disables_compiled_kernel(self):
        system = System(self._modeled_config(), 2)
        assert not kernel_eligible(system)
        assert kernel_eligible(System(tiny_config(), 2))


class TestFleetSpec:
    def test_group_size_and_shares(self):
        spec = FleetSpec(n_hosts=12, n_tenants=3, tenant_skew=0.0)
        assert spec.group_size == 4
        assert spec.tenant_shares() == pytest.approx([1 / 3] * 3)

    def test_skew_orders_shares(self):
        shares = FleetSpec(n_hosts=8, n_tenants=4, tenant_skew=1.0).tenant_shares()
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)

    def test_rejects_uneven_groups(self):
        with pytest.raises(ConfigError):
            FleetSpec(n_hosts=10, n_tenants=4)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigError):
            fleet_trace(FleetSpec(n_hosts=4, n_tenants=2, ws_bytes=1 * MB), "nope")

    def test_failover_needs_two_host_groups(self):
        with pytest.raises(ConfigError):
            fleet_trace(
                FleetSpec(n_hosts=4, n_tenants=4, ws_bytes=1 * MB), "failover_storm"
            )


class TestFleetScenarios:
    SPEC = FleetSpec(n_hosts=8, n_tenants=4, ws_bytes=1 * MB, threads_per_host=2)

    def test_scenarios_cover_all_hosts(self):
        for scenario in SCENARIOS:
            trace = fleet_trace(self.SPEC, scenario)
            hosts = trace.hosts()
            assert min(hosts) == 0
            assert max(hosts) == self.SPEC.n_hosts - 1

    def test_generation_is_deterministic(self):
        for scenario in SCENARIOS:
            first = fleet_trace(self.SPEC, scenario)
            second = fleet_trace(self.SPEC, scenario)
            assert first.records == second.records
            assert first.warmup_records == second.warmup_records

    def test_tenants_use_disjoint_files(self):
        trace = fleet_trace(self.SPEC, "steady")
        group = self.SPEC.group_size
        tenant_files = {}
        for record in trace.records:
            tenant_files.setdefault(record.host // group, set()).add(record.file_id)
        tenants = sorted(tenant_files)
        for a in tenants:
            for b in tenants:
                if a < b:
                    assert not (tenant_files[a] & tenant_files[b])

    def test_rolling_restart_adds_rewarm_reads(self):
        steady = fleet_trace(self.SPEC, "steady")
        rolling = fleet_trace(self.SPEC, "rolling_restart")
        assert len(rolling) > len(steady)
        assert rolling.warmup_records == steady.warmup_records
        extra = len(rolling) - len(steady)
        reads = lambda t: sum(1 for r in t.records if not r.is_write)  # noqa: E731
        assert reads(rolling) - reads(steady) == extra

    def test_failover_standbys_idle_before_switch(self):
        trace = fleet_trace(self.SPEC, "failover_storm")
        group = self.SPEC.group_size
        n_primary = (group + 1) // 2
        standbys = set(range(n_primary, group))
        first_standby = next(
            index
            for index, record in enumerate(trace.records)
            if record.host in standbys
        )
        # Standbys are silent through warmup and only wake mid-measurement.
        assert first_standby >= trace.warmup_records
        # After the switch the tenant's primaries go quiet: the last
        # primary record precedes the last standby record.
        last_primary = max(
            index
            for index, record in enumerate(trace.records)
            if record.host < n_primary
        )
        assert last_primary < len(trace.records) - 1

    def test_replay_counts_invalidations(self):
        for scenario in SCENARIOS:
            results = run_simulation(
                fleet_trace(self.SPEC, scenario),
                tiny_config(),
                n_hosts=self.SPEC.n_hosts,
            )
            assert results.writes_requiring_invalidation > 0
            assert results.writes_requiring_invalidation <= results.block_writes
