"""Tests for writeback policies."""

import pytest

from repro._units import SECOND
from repro.core.policies import PolicyKind, WritebackPolicy
from repro.errors import ConfigError


class TestConstruction:
    def test_sync(self):
        policy = WritebackPolicy.sync()
        assert policy.kind is PolicyKind.SYNC
        assert policy.blocks_requester
        assert policy.writes_through
        assert not policy.has_syncer

    def test_async(self):
        policy = WritebackPolicy.asynchronous()
        assert not policy.blocks_requester
        assert policy.writes_through

    def test_periodic(self):
        policy = WritebackPolicy.periodic(5)
        assert policy.has_syncer
        assert policy.period_ns == 5 * SECOND
        assert not policy.writes_through

    def test_none(self):
        policy = WritebackPolicy.none()
        assert not policy.writes_through
        assert not policy.has_syncer
        assert not policy.blocks_requester

    def test_periodic_requires_period(self):
        with pytest.raises(ConfigError):
            WritebackPolicy(PolicyKind.PERIODIC)

    def test_non_periodic_rejects_period(self):
        with pytest.raises(ConfigError):
            WritebackPolicy(PolicyKind.SYNC, period_ns=1)

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigError):
            WritebackPolicy(PolicyKind.PERIODIC, period_ns=0)


class TestParseAndLabel:
    @pytest.mark.parametrize("label", ["s", "a", "p1", "p5", "p15", "p30", "n"])
    def test_round_trip(self, label):
        assert WritebackPolicy.parse(label).label == label

    def test_parse_case_and_whitespace(self):
        assert WritebackPolicy.parse(" S ").kind is PolicyKind.SYNC

    def test_parse_fractional_period(self):
        policy = WritebackPolicy.parse("p0.5")
        assert policy.period_ns == SECOND // 2

    def test_parse_unknown_rejected(self):
        with pytest.raises(ConfigError):
            WritebackPolicy.parse("x")

    def test_parse_bad_period_rejected(self):
        with pytest.raises(ConfigError):
            WritebackPolicy.parse("pfast")

    def test_str(self):
        assert str(WritebackPolicy.periodic(15)) == "p15"


class TestExtendedPolicies:
    """The §3.6 policies the paper names but does not evaluate."""

    def test_trickle(self):
        policy = WritebackPolicy.trickle(1)
        assert policy.kind is PolicyKind.TRICKLE
        assert policy.has_syncer
        assert not policy.writes_through
        assert policy.label == "t1"

    def test_delayed(self):
        policy = WritebackPolicy.delayed(5)
        assert policy.kind is PolicyKind.DELAYED
        assert not policy.has_syncer
        assert policy.flush_delay_ns == 5 * SECOND
        assert policy.label == "d5"

    def test_parse_round_trip(self):
        for label in ("t1", "t30", "d1", "d0.5"):
            assert WritebackPolicy.parse(label).label == label

    def test_flush_delay_only_for_delayed(self):
        assert WritebackPolicy.periodic(1).flush_delay_ns is None
        assert WritebackPolicy.trickle(1).flush_delay_ns is None

    def test_period_required(self):
        with pytest.raises(ConfigError):
            WritebackPolicy(PolicyKind.TRICKLE)
        with pytest.raises(ConfigError):
            WritebackPolicy(PolicyKind.DELAYED)

    def test_behavior_trickle_flushes_eventually(self):
        from repro.core.machine import System
        from tests.helpers import tiny_config
        from tests.test_host_naive import timed

        config = tiny_config(
            ram_policy=WritebackPolicy.trickle(0.001),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(4):
            timed(system, host.write_block(block))
        assert host.ram.dirty_count == 4
        host.keep_running = lambda: system.sim.now < 3_000_000
        host.start_syncers()
        system.sim.run()
        assert host.ram.dirty_count == 0

    def test_behavior_delayed_flush_waits(self):
        from repro.core.machine import System
        from tests.helpers import tiny_config

        config = tiny_config(
            ram_policy=WritebackPolicy.delayed(0.001),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        process = system.sim.spawn(host.write_block(0))
        system.sim.run(until=500_000)  # half the delay
        assert process.finished
        assert host.ram.peek(0).dirty  # not flushed yet
        system.sim.run()
        assert not host.ram.peek(0).dirty  # flushed after the delay
        assert 0 in host.flash


class TestAllSeven:
    def test_seven_policies_in_paper_order(self):
        labels = [policy.label for policy in WritebackPolicy.all_seven()]
        assert labels == ["s", "a", "p1", "p5", "p15", "p30", "n"]

    def test_policies_hashable_and_distinct(self):
        assert len(set(WritebackPolicy.all_seven())) == 7
