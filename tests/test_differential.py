"""Tests for the degenerate-parameter differential harness."""

from repro.experiments.common import DEFAULT_SCALE
from repro.validation.differential import (
    DifferentialCheck,
    DifferentialReport,
    check_chunked_replay_identity,
    check_flash_zero_collapse,
    check_parallel_replay_identity,
    check_percentile_sketch,
    check_read_only_zero_writebacks,
    check_sync_policies_zero_dirty,
    main,
    result_signature,
    run_differential,
)

#: Coarse geometry for test speed; identities are scale-independent.
FAST_SCALE = DEFAULT_SCALE * 4


class TestIdentities:
    def test_flash_zero_collapses_architectures(self):
        check = check_flash_zero_collapse(scale=FAST_SCALE)
        assert check.passed, check.detail

    def test_read_only_trace_writes_nothing_back(self):
        check = check_read_only_zero_writebacks(scale=FAST_SCALE)
        assert check.passed, check.detail

    def test_sync_policies_leave_nothing_dirty(self):
        check = check_sync_policies_zero_dirty(scale=FAST_SCALE)
        assert check.passed, check.detail

    def test_chunked_replay_matches_materialized(self):
        check = check_chunked_replay_identity(scale=FAST_SCALE)
        assert check.passed, check.detail
        assert "15 matrix points" in check.detail

    def test_parallel_replay_matches_serial(self):
        check = check_parallel_replay_identity(scale=FAST_SCALE)
        assert check.passed, check.detail
        assert "16 points" in check.detail

    def test_percentile_sketch_within_bounds(self):
        check = check_percentile_sketch(scale=FAST_SCALE)
        assert check.passed, check.detail


class TestHarness:
    def test_run_differential_aggregates(self):
        report = run_differential(scale=FAST_SCALE)
        assert report.passed, report.summary()
        assert len(report.checks) == 9
        assert {c.name for c in report.checks} == {
            "flash-zero-collapse",
            "read-only-zero-writebacks",
            "sync-policies-zero-dirty",
            "chunked-replay-identity",
            "compiled-kernel-identity",
            "sharded-directory-identity",
            "fleet-identity",
            "parallel-replay-identity",
            "percentile-sketch-bounds",
        }

    def test_report_fails_when_any_check_fails(self):
        report = DifferentialReport(
            checks=[
                DifferentialCheck("a", True),
                DifferentialCheck("b", False, "drifted"),
            ]
        )
        assert not report.passed
        summary = report.summary()
        assert "PASS" in summary and "FAIL" in summary and "drifted" in summary

    def test_main_fast(self, capsys):
        assert main(["--scale", str(FAST_SCALE)]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 9


class TestSignature:
    def test_signature_covers_timing_and_traffic(self):
        from repro.core.simulator import run_simulation
        from tests.helpers import make_trace, tiny_config

        trace = make_trace([("r", 1), ("w", 2), ("r", 1)])
        result = run_simulation(trace, tiny_config())
        signature = result_signature(result)
        for key in (
            "read_mean_us",
            "write_mean_us",
            "simulated_ns",
            "filer_writes",
            "writebacks",
            "network_utilization",
        ):
            assert key in signature
