"""White-box tests of the exclusive (migration) architecture extension."""

from repro._units import KB, MB
from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation

from tests.helpers import (
    FILER_WRITE_PATH_NS,
    FLASH_READ_NS,
    MISS_READ_NOFLASH_NS,
    RAM_HIT_READ_NS,
    RAM_WRITE_NS,
    make_trace,
    tiny_config,
)
from tests.test_host_naive import timed


def migration_config(**overrides):
    return tiny_config(architecture=Architecture.EXCLUSIVE, **overrides)


class TestExclusivity:
    def test_fill_lands_in_ram_only(self):
        system = System(migration_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert 0 in host.ram
        assert 0 not in host.flash

    def test_ram_eviction_demotes_to_flash(self):
        system = System(migration_config(ram_bytes=8 * KB), 1)  # 2 RAM blocks
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        assert 0 not in host.ram
        assert 0 in host.flash

    def test_flash_hit_promotes_back_to_ram(self):
        system = System(migration_config(ram_bytes=8 * KB), 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        timed(system, host.read_block(0))  # promote
        assert 0 in host.ram
        assert 0 not in host.flash  # exclusive: no duplicate

    def test_block_never_in_both_tiers(self):
        system = System(migration_config(ram_bytes=8 * KB, flash_bytes=32 * KB), 1)
        host = system.hosts[0]

        def workload():
            for i in range(60):
                if i % 3 == 0:
                    yield from host.write_block(i % 12)
                else:
                    yield from host.read_block(i % 14)
                ram_blocks = set(host.ram.blocks())
                flash_blocks = set(host.flash.blocks())
                assert not (ram_blocks & flash_blocks)

        system.sim.run_until_complete(workload())


class TestLatencies:
    def test_miss_latency_is_noflash_path(self):
        """Fills skip the flash, so a cold miss costs the no-flash path."""
        system = System(migration_config(), 1)
        assert timed(system, system.hosts[0].read_block(0)) == MISS_READ_NOFLASH_NS

    def test_ram_hit(self):
        system = System(migration_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert timed(system, host.read_block(0)) == RAM_HIT_READ_NS

    def test_promotion_charges_flash_read_plus_ram_install(self):
        system = System(migration_config(ram_bytes=8 * KB), 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        # Promoting 0 costs the flash read and the RAM install; the
        # displaced victim demotes to flash in the background.
        duration = timed(system, host.read_block(0))
        assert duration == FLASH_READ_NS + RAM_WRITE_NS

    def test_write_is_ram_speed(self):
        system = System(migration_config(), 1)
        assert timed(system, system.hosts[0].write_block(0)) == RAM_WRITE_NS

    def test_sync_policy_writes_to_filer(self):
        config = migration_config(ram_policy=WritebackPolicy.sync())
        system = System(config, 1)
        duration = timed(system, system.hosts[0].write_block(0))
        assert duration == RAM_WRITE_NS + FILER_WRITE_PATH_NS


class TestDirtyMigration:
    def test_dirty_state_travels_on_demotion(self):
        config = migration_config(
            ram_bytes=8 * KB, ram_policy=WritebackPolicy.none()
        )
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        timed(system, host.write_block(1))
        timed(system, host.write_block(2))  # demotes dirty block 0
        assert host.flash.peek(0).dirty

    def test_dirty_state_travels_on_promotion(self):
        config = migration_config(
            ram_bytes=8 * KB,
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.write_block(block))
        timed(system, host.read_block(0))  # promote the dirty block
        assert host.ram.peek(0).dirty
        assert system.filer.writes == 0  # nothing was silently dropped

    def test_dirty_flash_eviction_reaches_filer(self):
        config = migration_config(
            ram_bytes=4 * KB,
            flash_bytes=8 * KB,
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        for block in range(4):  # 1 RAM + 2 flash buffers: forces eviction
            timed(system, host.write_block(block))
        assert system.filer.writes >= 1

    def test_write_supersedes_flash_copy(self):
        system = System(migration_config(ram_bytes=8 * KB), 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        assert 0 in host.flash
        timed(system, host.write_block(0))
        assert 0 in host.ram
        assert 0 not in host.flash


class TestEndToEnd:
    def test_effective_capacity_beats_naive_on_overflow_ws(self):
        """The paper's open question: exclusive placement gets unified's
        effective capacity while keeping hot blocks in RAM."""
        from repro.fsmodel.impressions import ImpressionsConfig
        from repro.tracegen.config import TraceGenConfig
        from repro.tracegen.generator import generate_trace

        trace = generate_trace(
            TraceGenConfig(
                fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
                working_set_bytes=9 * MB,
                seed=11,
            )
        )
        naive = run_simulation(trace, tiny_config(ram_bytes=1 * MB, flash_bytes=8 * MB))
        exclusive = run_simulation(
            trace, migration_config(ram_bytes=1 * MB, flash_bytes=8 * MB)
        )
        assert exclusive.read_latency_us <= naive.read_latency_us * 1.05

    def test_invalidation_drops_either_tier(self):
        system = System(migration_config(ram_bytes=8 * KB), 1)
        host = system.hosts[0]
        for block in (0, 1, 2):
            timed(system, host.read_block(block))
        host.drop_block(0)  # in flash
        host.drop_block(2)  # in RAM
        assert 0 not in host.flash
        assert 2 not in host.ram

    def test_replay_through_run_simulation(self):
        trace = make_trace([("r", 0), ("w", 0), ("r", 1), ("r", 0)])
        results = run_simulation(trace, migration_config())
        assert results.read_latency.count == 3
        assert results.write_latency.count == 1
