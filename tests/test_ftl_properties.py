"""Property-based tests for the page-mapped FTL (hypothesis).

The FTL is checked against the obviously-correct model of what it
implements: a mapping from logical pages to their latest written
version.  Whatever sequence of writes/trims/GC happens, reading the
map back must reflect exactly the live pages, physical locations must
never be shared, and accounting identities must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.ftl import FTLConfig, PageMappedFTL

GEOMETRY = st.tuples(
    st.integers(min_value=4, max_value=12),   # erase blocks
    st.integers(min_value=2, max_value=8),    # pages per block
)


def make_ftl(n_blocks, pages_per_block):
    return PageMappedFTL(
        FTLConfig(
            n_blocks=n_blocks,
            pages_per_block=pages_per_block,
            overprovision=0.25,
            gc_threshold_blocks=2,
        )
    )


def ops_strategy(logical_pages):
    lpns = st.integers(min_value=0, max_value=logical_pages - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), lpns),
            st.tuples(st.just("trim"), lpns),
        ),
        max_size=300,
    )


@settings(max_examples=80, deadline=None)
@given(geometry=GEOMETRY, data=st.data())
def test_mapping_matches_reference_model(geometry, data):
    ftl = make_ftl(*geometry)
    ops = data.draw(ops_strategy(ftl.config.logical_pages))
    live = set()
    for op, lpn in ops:
        if op == "write":
            ftl.write(lpn)
            live.add(lpn)
        else:
            ftl.trim(lpn)
            live.discard(lpn)
    for lpn in range(ftl.config.logical_pages):
        location = ftl.read(lpn)
        assert (location is not None) == (lpn in live)


@settings(max_examples=80, deadline=None)
@given(geometry=GEOMETRY, data=st.data())
def test_no_two_lpns_share_a_physical_page(geometry, data):
    ftl = make_ftl(*geometry)
    ops = data.draw(ops_strategy(ftl.config.logical_pages))
    for op, lpn in ops:
        if op == "write":
            ftl.write(lpn)
        else:
            ftl.trim(lpn)
    locations = [
        ftl.read(lpn)
        for lpn in range(ftl.config.logical_pages)
        if ftl.read(lpn) is not None
    ]
    assert len(locations) == len(set(locations))


@settings(max_examples=80, deadline=None)
@given(geometry=GEOMETRY, data=st.data())
def test_accounting_identities(geometry, data):
    ftl = make_ftl(*geometry)
    ops = data.draw(ops_strategy(ftl.config.logical_pages))
    host_writes = 0
    for op, lpn in ops:
        if op == "write":
            ftl.write(lpn)
            host_writes += 1
        else:
            ftl.trim(lpn)
    assert ftl.host_writes == host_writes
    assert ftl.flash_writes >= ftl.host_writes
    if host_writes:
        assert ftl.write_amplification >= 1.0
    else:
        assert ftl.write_amplification == 0.0
    wear = ftl.wear_stats()
    assert wear["min"] <= wear["mean"] <= wear["max"]


@settings(max_examples=40, deadline=None)
@given(geometry=GEOMETRY, seed=st.integers(min_value=0, max_value=2**16))
def test_sustained_random_churn_never_wedges(geometry, seed):
    """Heavy random overwrite churn: GC always makes progress and every
    live page stays readable."""
    import random

    rng = random.Random(seed)
    ftl = make_ftl(*geometry)
    pages = ftl.config.logical_pages
    written = set()
    for _ in range(8 * pages):
        lpn = rng.randrange(pages)
        ftl.write(lpn)
        written.add(lpn)
    for lpn in written:
        assert ftl.read(lpn) is not None
