"""Tests for trace serialization (text and binary round trips)."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.format import load_trace, save_trace
from repro.traces.records import Trace, TraceOp, TraceRecord


def sample_trace():
    records = [
        TraceRecord(TraceOp.READ, 0, 3, 1, 42, 8),
        TraceRecord(TraceOp.WRITE, 1, 0, 0, 0, 1),
        TraceRecord(TraceOp.READ, 0, 7, 2, 999, 2),
    ]
    return Trace(
        records,
        [100, 250, 1024],
        warmup_records=1,
        metadata={"seed": "42", "generator": "test"},
    )


class TestTextRoundTrip:
    def test_records_survive(self, tmp_path):
        path = tmp_path / "t.trace"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.records == original.records

    def test_geometry_and_metadata_survive(self, tmp_path):
        path = tmp_path / "t.trace"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.file_blocks == original.file_blocks
        assert loaded.warmup_records == original.warmup_records
        assert loaded.metadata == original.metadata

    def test_file_is_human_readable(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(sample_trace(), path)
        text = path.read_text()
        assert text.startswith("%REPRO-TRACE v1")
        assert "R 0 3 1 42 8" in text

    def test_unknown_directives_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(sample_trace(), path)
        patched = path.read_text().replace(
            "@files", "#future directive we do not understand\n@files"
        )
        path.write_text(patched)
        assert len(load_trace(path)) == 3


class TestBinaryRoundTrip:
    def test_full_round_trip(self, tmp_path):
        path = tmp_path / "t.btrace"
        original = sample_trace()
        save_trace(original, path, binary=True)
        loaded = load_trace(path)
        assert loaded.records == original.records
        assert loaded.file_blocks == original.file_blocks
        assert loaded.warmup_records == original.warmup_records
        assert loaded.metadata == original.metadata

    def test_big_trace_round_trips(self, tmp_path):
        records = [
            TraceRecord(TraceOp.READ, 0, i % 8, 0, i % 1000, 1 + i % 7)
            for i in range(5000)
        ]
        trace = Trace(records, [2000])
        bin_path = tmp_path / "t.btrace"
        save_trace(trace, bin_path, binary=True)
        loaded = load_trace(bin_path)
        assert loaded.records == records

    def test_record_size_is_fixed_width(self, tmp_path):
        small = Trace([TraceRecord(TraceOp.READ, 0, 0, 0, 0, 1)], [10])
        big = Trace([TraceRecord(TraceOp.WRITE, 9, 7, 0, 7, 3)], [10])
        small_path, big_path = tmp_path / "s", tmp_path / "b"
        save_trace(small, small_path, binary=True)
        save_trace(big, big_path, binary=True)
        assert small_path.stat().st_size == big_path.stat().st_size

    def test_autodetect_by_magic(self, tmp_path):
        text_path = tmp_path / "a"
        bin_path = tmp_path / "b"
        save_trace(sample_trace(), text_path)
        save_trace(sample_trace(), bin_path, binary=True)
        assert load_trace(text_path).records == load_trace(bin_path).records


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_malformed_record_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("%REPRO-TRACE v1\n@files 10\nR zero 0 0 0 1\n")
        with pytest.raises(TraceFormatError, match="line 3"):
            load_trace(path)

    def test_truncated_binary(self, tmp_path):
        path = tmp_path / "t.btrace"
        save_trace(sample_trace(), path, binary=True)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_binary_garbage_header(self, tmp_path):
        path = tmp_path / "t.btrace"
        save_trace(sample_trace(), path, binary=True)
        data = bytearray(path.read_bytes())
        data[15] ^= 0xFF  # corrupt the JSON header
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace(Trace([], [5]), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.file_blocks == [5]
