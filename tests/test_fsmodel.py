"""Tests for the file-system model and its distributions."""

import random

import pytest

from repro._units import BLOCK_SIZE, MB
from repro.errors import ConfigError
from repro.fsmodel.distributions import (
    WeightedSampler,
    pareto_sample,
    poisson_sample,
    truncated_lognormal_sample,
    zipf_popularity,
)
from repro.fsmodel.files import FileSpec, FileSystemModel
from repro.fsmodel.impressions import ImpressionsConfig, generate_filesystem


class TestPoisson:
    def test_zero_mean(self):
        assert poisson_sample(random.Random(1), 0) == 0

    def test_small_mean_statistics(self):
        rng = random.Random(2)
        samples = [poisson_sample(rng, 4.0) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(4.0, rel=0.05)

    def test_large_mean_uses_normal_approx(self):
        rng = random.Random(3)
        samples = [poisson_sample(rng, 200.0) for _ in range(5_000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(200.0, rel=0.05)
        assert min(samples) >= 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigError):
            poisson_sample(random.Random(1), -1.0)


class TestLognormalAndPareto:
    def test_lognormal_respects_cap(self):
        rng = random.Random(4)
        for _ in range(1000):
            assert truncated_lognormal_sample(rng, 10.0, 2.0, 5000.0) <= 5000.0

    def test_pareto_respects_minimum(self):
        rng = random.Random(5)
        for _ in range(1000):
            assert pareto_sample(rng, 1.3, 100.0) >= 100.0

    def test_pareto_validation(self):
        with pytest.raises(ConfigError):
            pareto_sample(random.Random(1), 0, 1)


class TestZipfPopularity:
    def test_range(self):
        rng = random.Random(6)
        values = [zipf_popularity(rng, 16, 1.5) for _ in range(5000)]
        assert min(values) >= 1
        assert max(values) <= 16

    def test_popularity_one_is_the_mode(self):
        # With s=1.5 truncated at 16, P(1) = 1/H_16(1.5) which is ~0.39:
        # popularity 1 is by far the most common value.
        rng = random.Random(7)
        values = [zipf_popularity(rng, 16, 1.5) for _ in range(5000)]
        ones = sum(1 for v in values if v == 1)
        twos = sum(1 for v in values if v == 2)
        assert ones / len(values) > 0.3
        assert ones > 2 * twos

    def test_validation(self):
        with pytest.raises(ConfigError):
            zipf_popularity(random.Random(1), 0)
        with pytest.raises(ConfigError):
            zipf_popularity(random.Random(1), 16, 0)


class TestWeightedSampler:
    def test_respects_weights(self):
        sampler = WeightedSampler([1.0, 9.0])
        rng = random.Random(8)
        picks = [sampler.sample(rng) for _ in range(10_000)]
        heavy = sum(1 for p in picks if p == 1)
        assert heavy / len(picks) == pytest.approx(0.9, abs=0.02)

    def test_single_item(self):
        sampler = WeightedSampler([3.0])
        assert sampler.sample(random.Random(9)) == 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            WeightedSampler([])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedSampler([1.0, 0.0])


class TestFileSpec:
    def test_nbytes(self):
        assert FileSpec(0, 10).nbytes == 10 * BLOCK_SIZE

    def test_validation(self):
        with pytest.raises(ConfigError):
            FileSpec(0, 0)
        with pytest.raises(ConfigError):
            FileSpec(0, 1, popularity=0)


class TestFileSystemModel:
    def test_dense_ids_enforced(self):
        with pytest.raises(ConfigError):
            FileSystemModel([FileSpec(1, 10)])

    def test_totals(self):
        model = FileSystemModel([FileSpec(0, 10), FileSpec(1, 20)])
        assert model.total_blocks == 30
        assert model.total_bytes == 30 * BLOCK_SIZE
        assert model.file_blocks() == [10, 20]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            FileSystemModel([])

    def test_size_histogram(self):
        model = FileSystemModel([FileSpec(0, 5), FileSpec(1, 50), FileSpec(2, 500)])
        hist = model.size_histogram([10, 100])
        assert hist["<= 10"] == 1
        assert hist["11..100"] == 1
        assert hist["> 100"] == 1


class TestImpressionsGenerator:
    def test_total_close_to_target(self):
        config = ImpressionsConfig(total_bytes=32 * MB, seed=11)
        model = generate_filesystem(config)
        assert model.total_bytes == pytest.approx(32 * MB, rel=0.02)

    def test_many_files(self):
        model = generate_filesystem(ImpressionsConfig(total_bytes=32 * MB, seed=11))
        assert len(model) > 50

    def test_size_diversity(self):
        model = generate_filesystem(ImpressionsConfig(total_bytes=32 * MB, seed=11))
        sizes = sorted(spec.blocks for spec in model)
        assert sizes[0] < sizes[-1]  # not all the same size

    def test_max_file_cap_respected(self):
        config = ImpressionsConfig(total_bytes=32 * MB, max_file_bytes=1 * MB, seed=11)
        model = generate_filesystem(config)
        assert max(spec.nbytes for spec in model) <= 1 * MB

    def test_deterministic(self):
        config = ImpressionsConfig(total_bytes=8 * MB, seed=12)
        first = generate_filesystem(config).file_blocks()
        second = generate_filesystem(config).file_blocks()
        assert first == second

    def test_popularities_are_small_positive_ints(self):
        model = generate_filesystem(ImpressionsConfig(total_bytes=8 * MB, seed=13))
        for spec in model:
            assert 1 <= spec.popularity <= 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            ImpressionsConfig(total_bytes=0)
        with pytest.raises(ConfigError):
            ImpressionsConfig(tail_fraction=2.0)
