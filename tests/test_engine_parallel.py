"""Parallel intra-simulation replay: partition analysis properties and
the serial/parallel bit-identity contract (:mod:`repro.engine.parallel`,
:mod:`repro.traces.partition`)."""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.simulator import run_simulation
from repro.engine import parallel as par
from repro.errors import SimulationError
from repro.net.directory import DirectoryTiming
from repro.traces.chunked import ChunkedCompiledTrace
from repro.traces.compiled import compile_trace
from repro.traces.partition import (
    analyze_partition,
    plan_groups,
    slice_hosts,
    split_hosts_evenly,
    static_write_blocks,
)
from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.validation.differential import full_signature

from tests.helpers import make_trace, tiny_config


def random_multihost_ops(rng, n_hosts, n_ops, *, span=2000, shared=0.0):
    """(op, block, host) tuples: mostly host-private ranges, with a
    ``shared`` fraction of accesses landing in a common range."""
    ops = []
    for _ in range(n_ops):
        host = rng.randrange(n_hosts)
        if rng.random() < shared:
            block = rng.randrange(200)
        else:
            block = 300 + host * span + rng.randrange(span // 2)
        ops.append(("w" if rng.random() < 0.3 else "r", block, host))
    return ops


def brute_force_components(trace, n_hosts):
    """The interference rule evaluated literally, block by block."""
    touchers = {}
    writers = {}
    if isinstance(trace, Trace):
        rows = [
            (1 if r.op is TraceOp.WRITE else 0, r.host, r.offset, r.nblocks)
            for r in trace.records
        ]
    else:
        rows = list(
            zip(
                trace.ops.tolist(),
                trace.hosts_col.tolist(),
                trace.start_blocks.tolist(),
                trace.nblocks.tolist(),
            )
        )
    for op, host, start, nb in rows:
        for block in range(start, start + nb):
            touchers.setdefault(block, set()).add(host)
            if op:
                writers.setdefault(block, set()).add(host)
    parent = list(range(n_hosts))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for block, hosts in touchers.items():
        if len(hosts) >= 2 and writers.get(block):
            first, *rest = sorted(hosts)
            for other in rest:
                ra, rb = sorted((find(first), find(other)))
                parent[rb] = ra
    groups = {}
    for host in range(n_hosts):
        groups.setdefault(find(host), []).append(host)
    components = [sorted(g) for g in groups.values()]
    components.sort(key=lambda g: g[0])
    return components


class TestPartitionAnalysis:
    def test_components_match_brute_force_on_random_traces(self):
        rng = random.Random(0xA11CE)
        for trial in range(25):
            n_hosts = rng.randrange(2, 9)
            shared = rng.choice([0.0, 0.0, 0.05, 0.3])
            trace = make_trace(
                random_multihost_ops(rng, n_hosts, 300, span=80, shared=shared),
                file_blocks=4096,
            )
            compiled = compile_trace(trace)
            analysis = analyze_partition(compiled, n_hosts)
            assert analysis.components == brute_force_components(
                compiled, n_hosts
            ), "trial %d" % trial

    def test_separated_hosts_share_no_written_block(self):
        rng = random.Random(0xBEEF)
        for trial in range(15):
            n_hosts = rng.randrange(3, 8)
            trace = compile_trace(
                make_trace(
                    random_multihost_ops(rng, n_hosts, 400, span=60, shared=0.1),
                    file_blocks=4096,
                )
            )
            analysis = analyze_partition(trace, n_hosts)
            for i, left in enumerate(analysis.components):
                for right in analysis.components[i + 1 :]:
                    # No block written on either side may be touched by
                    # the other side.
                    left_w = static_write_blocks(trace, set(left))
                    right_w = static_write_blocks(trace, set(right))
                    left_touch = _touched_blocks(trace, set(left))
                    right_touch = _touched_blocks(trace, set(right))
                    assert not (left_w & right_touch)
                    assert not (right_w & left_touch)

    def test_chunked_and_compiled_analyses_agree(self):
        rng = random.Random(0x5EED)
        trace = make_trace(
            random_multihost_ops(rng, 6, 500, span=100, shared=0.08),
            file_blocks=4096,
        )
        compiled = compile_trace(trace)
        chunked = ChunkedCompiledTrace.from_trace(trace, chunk_records=64)
        a = analyze_partition(compiled, 6)
        b = analyze_partition(chunked, 6)
        assert a.components == b.components
        assert a.host_rows == b.host_rows
        assert a.host_writes == b.host_writes

    def test_warmup_rows_participate_in_the_analysis(self):
        # The only interference is inside the warmup: host 0 writes a
        # block host 1 reads during warmup.  Warmup populates caches
        # and holder bits, so the hosts are coupled regardless.
        ops = [("w", 10, 0), ("r", 10, 1), ("r", 500, 0), ("r", 600, 1)]
        trace = compile_trace(make_trace(ops, warmup=2))
        analysis = analyze_partition(trace, 2)
        assert analysis.components == [[0, 1]]

    def test_pure_read_sharing_does_not_couple(self):
        ops = [("r", 10, 0), ("r", 10, 1), ("w", 500, 0), ("w", 600, 1)]
        analysis = analyze_partition(compile_trace(make_trace(ops)), 2)
        assert analysis.components == [[0], [1]]

    def test_readers_couple_through_a_third_writer(self):
        # Hosts 0 and 1 only read block 7; host 2 writes it.  All three
        # must land in one component — 2's invalidation hits both.
        ops = [("r", 7, 0), ("r", 7, 1), ("w", 7, 2)]
        analysis = analyze_partition(compile_trace(make_trace(ops)), 3)
        assert analysis.components == [[0, 1, 2]]

    def test_idle_hosts_are_singletons(self):
        ops = [("r", 1, 0), ("w", 1, 0)]
        analysis = analyze_partition(compile_trace(make_trace(ops)), 4)
        assert analysis.components == [[0], [1], [2], [3]]


def _touched_blocks(trace, hosts):
    touched = set()
    rows = zip(
        trace.hosts_col.tolist(), trace.start_blocks.tolist(), trace.nblocks.tolist()
    )
    for host, start, nb in rows:
        if host in hosts:
            touched.update(range(start, start + nb))
    return touched


class TestGroupPlanning:
    def _analysis(self, rng, n_hosts=8):
        trace = compile_trace(
            make_trace(
                random_multihost_ops(rng, n_hosts, 400, span=50),
                file_blocks=4096,
            )
        )
        return trace, analyze_partition(trace, n_hosts)

    def test_plan_groups_partitions_all_hosts(self):
        rng = random.Random(1)
        _trace, analysis = self._analysis(rng)
        for max_groups in (1, 2, 3, 8, 20):
            groups = plan_groups(analysis, max_groups)
            assert sorted(h for g in groups for h in g) == list(range(8))
            assert len(groups) <= max(max_groups, 1)

    def test_plan_groups_never_splits_a_component(self):
        rng = random.Random(2)
        _trace, analysis = self._analysis(rng)
        groups = plan_groups(analysis, 3)
        for component in analysis.components:
            owners = {
                index
                for index, group in enumerate(groups)
                for host in component
                if host in group
            }
            assert len(owners) == 1

    def test_plan_groups_is_deterministic(self):
        rng = random.Random(3)
        _trace, analysis = self._analysis(rng)
        assert plan_groups(analysis, 4) == plan_groups(analysis, 4)

    def test_split_hosts_evenly_partitions_all_hosts(self):
        rng = random.Random(4)
        _trace, analysis = self._analysis(rng)
        groups = split_hosts_evenly(analysis, 3)
        assert sorted(h for g in groups for h in g) == list(range(8))
        assert len(groups) == 3


class TestSliceHosts:
    def test_slice_preserves_rows_and_order(self):
        rng = random.Random(5)
        ops = random_multihost_ops(rng, 4, 200, span=40, shared=0.2)
        trace = compile_trace(make_trace(ops))
        hosts = {1, 3}
        sliced = slice_hosts(trace, hosts)
        expected = [
            row
            for row in zip(
                trace.ops.tolist(),
                trace.hosts_col.tolist(),
                trace.start_blocks.tolist(),
            )
            if row[1] in hosts
        ]
        got = list(
            zip(
                sliced.ops.tolist(),
                sliced.hosts_col.tolist(),
                sliced.start_blocks.tolist(),
            )
        )
        assert got == expected
        assert sliced.file_blocks == trace.file_blocks
        assert sliced.warmup_records == 0

    def test_slices_cover_the_trace_exactly_once(self):
        rng = random.Random(6)
        trace = compile_trace(
            make_trace(random_multihost_ops(rng, 5, 150, span=30))
        )
        total = sum(
            len(slice_hosts(trace, {h})) for h in range(5)
        )
        assert total == len(trace)

    def test_slice_rejects_warmup_traces(self):
        trace = compile_trace(make_trace([("r", 1, 0), ("r", 2, 1)], warmup=1))
        with pytest.raises(SimulationError):
            slice_hosts(trace, {0})


class TestStaticWriteBlocks:
    def test_matches_brute_force(self):
        rng = random.Random(7)
        ops = random_multihost_ops(rng, 3, 200, span=40, shared=0.3)
        trace = compile_trace(make_trace(ops))
        for hosts in ({0}, {1, 2}, {0, 1, 2}):
            expected = set()
            for op, block, host in ops:
                if op == "w" and host in hosts:
                    expected.add(block)
            assert static_write_blocks(trace, hosts) == expected


def _eligible_multihost_trace(seed=7, n_hosts=4, n_ops=3000):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        host = rng.randrange(n_hosts)
        block = host * 1000 + rng.randrange(500)
        ops.append(("w" if rng.random() < 0.3 else "r", block, host))
    return make_trace(ops, file_blocks=8192)


class TestParallelReplayIdentity:
    def test_independent_hosts_replay_bit_identical(self):
        trace = _eligible_multihost_trace()
        config = tiny_config()
        serial = run_simulation(trace, config)
        merged = run_simulation(trace, config, parallel_hosts=4)
        outcome = par.last_outcome()
        assert outcome is not None and outcome.kind == "parallel"
        assert outcome.tier == "independent"
        assert full_signature(serial) == full_signature(merged)

    def test_two_workers_on_four_hosts(self):
        trace = _eligible_multihost_trace(seed=21)
        config = tiny_config()
        serial = run_simulation(trace, config)
        merged = run_simulation(trace, config, parallel_hosts=2)
        outcome = par.last_outcome()
        assert outcome is not None and outcome.kind == "parallel"
        assert outcome.groups == 2
        assert full_signature(serial) == full_signature(merged)

    def test_shared_working_set_conflicts_and_falls_back(self):
        rng = random.Random(11)
        ops = [
            ("w" if rng.random() < 0.3 else "r", rng.randrange(300), rng.randrange(4))
            for _ in range(1500)
        ]
        trace = make_trace(ops)
        config = tiny_config()
        serial = run_simulation(trace, config)
        merged = run_simulation(trace, config, parallel_hosts=4)
        outcome = par.last_outcome()
        assert outcome is not None and outcome.kind == "conflict"
        assert outcome.tier == "watched"
        assert full_signature(serial) == full_signature(merged)

    def test_coupled_hosts_with_modeled_directory_decline(self):
        ops = [("w", 5, 0), ("r", 5, 1)] * 50
        trace = make_trace(ops)
        config = tiny_config()
        config = replace(
            config,
            timing=replace(
                config.timing,
                directory=DirectoryTiming(lookup_ns=1000, invalidate_ns=500),
            ),
        )
        serial = run_simulation(trace, config)
        merged = run_simulation(trace, config, parallel_hosts=2)
        outcome = par.last_outcome()
        assert outcome is not None and outcome.kind == "declined"
        assert "directory" in outcome.detail
        assert full_signature(serial) == full_signature(merged)


class TestEligibilityGates:
    def _reason(self, trace, config, **kwargs):
        options = dict(
            n_hosts=4,
            workers=4,
            restart=None,
            timeline_bucket_ns=None,
            check_invariants=False,
            obs=None,
        )
        options.update(kwargs)
        return par.decline_reason(trace, config, **options)

    def test_eligible_baseline(self):
        trace = compile_trace(_eligible_multihost_trace())
        assert self._reason(trace, tiny_config()) is None

    def test_warmup_declines(self):
        trace = compile_trace(make_trace([("r", 1, 0), ("r", 2, 1)], warmup=1))
        assert "warmup" in self._reason(trace, tiny_config())

    def test_fractional_fast_read_rate_declines(self):
        from tests.helpers import deterministic_timing

        trace = compile_trace(_eligible_multihost_trace())
        config = tiny_config(timing=deterministic_timing(fast_read_rate=0.9))
        assert "RNG" in self._reason(trace, config)

    def test_single_host_declines(self):
        trace = compile_trace(make_trace([("r", 1, 0)]))
        assert "single-host" in self._reason(trace, tiny_config(), n_hosts=1)

    def test_invariant_checking_declines(self):
        trace = compile_trace(_eligible_multihost_trace())
        assert "invariant" in self._reason(
            trace, tiny_config(), check_invariants=True
        )

    def test_timeline_declines(self):
        trace = compile_trace(_eligible_multihost_trace())
        assert "timeline" in self._reason(
            trace, tiny_config(), timeline_bucket_ns=1_000_000
        )

    def test_one_worker_declines(self):
        trace = compile_trace(_eligible_multihost_trace())
        assert "workers" in self._reason(trace, tiny_config(), workers=1)
