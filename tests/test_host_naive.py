"""White-box tests of the naive architecture's exact path latencies.

These drive the host stack directly through a System with deterministic
timing (prefetch rate 1.0 so every filer read is fast), asserting exact
nanosecond latencies for every hit level and policy behavior.
"""


from repro._units import KB
from repro.core.machine import System
from repro.core.policies import WritebackPolicy

from tests.helpers import (
    FILER_WRITE_PATH_NS,
    FLASH_HIT_READ_NS,
    FLASH_WRITE_NS,
    MISS_READ_NOFLASH_NS,
    MISS_READ_NS,
    RAM_HIT_READ_NS,
    RAM_WRITE_NS,
    tiny_config,
)


def timed(system, gen):
    """Run one host-stack operation; return the duration the *requester*
    observed (background flushes it spawned drain afterwards and do not
    count, exactly as the application would see it)."""
    start = system.sim.now
    finished_at = []
    process = system.sim.spawn(gen)
    process.completion.add_callback(lambda _value: finished_at.append(system.sim.now))
    system.sim.run()
    assert finished_at, "operation did not complete"
    return finished_at[0] - start


class TestReadPath:
    def test_cold_miss_exact_latency(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        assert timed(system, host.read_block(0)) == MISS_READ_NS

    def test_ram_hit_exact_latency(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert timed(system, host.read_block(0)) == RAM_HIT_READ_NS

    def test_flash_hit_after_ram_eviction(self):
        config = tiny_config(ram_bytes=8 * KB)  # 2 RAM blocks
        system = System(config, 1)
        host = system.hosts[0]
        for block in (0, 1, 2):  # block 0 falls out of RAM, stays in flash
            timed(system, host.read_block(block))
        assert 0 not in host.ram
        assert 0 in host.flash
        assert timed(system, host.read_block(0)) == FLASH_HIT_READ_NS

    def test_miss_without_flash(self):
        system = System(tiny_config(flash_bytes=0), 1)
        host = system.hosts[0]
        assert timed(system, host.read_block(0)) == MISS_READ_NOFLASH_NS

    def test_read_fill_populates_both_tiers(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(5))
        assert 5 in host.ram
        assert 5 in host.flash
        assert not host.flash.peek(5).dirty

    def test_clean_ram_eviction_is_free(self):
        config = tiny_config(ram_bytes=8 * KB)
        system = System(config, 1)
        host = system.hosts[0]
        for block in (0, 1):
            timed(system, host.read_block(block))
        # Block 2 evicts clean block 0: no writeback charge beyond the miss.
        assert timed(system, host.read_block(2)) == MISS_READ_NS


class TestWritePath:
    def test_write_is_ram_speed_under_async_policy(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        assert timed(system, host.write_block(0)) == RAM_WRITE_NS

    def test_write_hit_is_ram_speed(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert timed(system, host.write_block(0)) == RAM_WRITE_NS

    def test_sync_ram_policy_blocks_until_flash(self):
        config = tiny_config(ram_policy=WritebackPolicy.sync())
        system = System(config, 1)
        host = system.hosts[0]
        assert timed(system, host.write_block(0)) == RAM_WRITE_NS + FLASH_WRITE_NS

    def test_sync_sync_chain_blocks_until_filer(self):
        config = tiny_config(
            ram_policy=WritebackPolicy.sync(), flash_policy=WritebackPolicy.sync()
        )
        system = System(config, 1)
        host = system.hosts[0]
        expected = RAM_WRITE_NS + FLASH_WRITE_NS + FILER_WRITE_PATH_NS
        assert timed(system, host.write_block(0)) == expected

    def test_async_policy_cleans_block_in_background(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))  # async flush spawned and drained
        assert not host.ram.peek(0).dirty
        assert 0 in host.flash

    def test_none_policy_leaves_block_dirty(self):
        config = tiny_config(
            ram_policy=WritebackPolicy.none(), flash_policy=WritebackPolicy.none()
        )
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        assert host.ram.peek(0).dirty
        assert 0 not in host.flash  # not flushed yet

    def test_dirty_ram_eviction_charges_flash_write(self):
        config = tiny_config(
            ram_bytes=8 * KB,  # 2 RAM blocks
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        timed(system, host.write_block(1))
        # The third write must evict dirty block 0 -> synchronous flash write.
        expected = RAM_WRITE_NS + FLASH_WRITE_NS
        assert timed(system, host.write_block(2)) == expected
        assert host.flash.peek(0).dirty

    def test_full_dirty_flash_eviction_exposes_filer(self):
        config = tiny_config(
            ram_bytes=4 * KB,  # 1 RAM block
            flash_bytes=8 * KB,  # 2 flash blocks
            ram_policy=WritebackPolicy.none(),
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        # Fill both flash blocks with dirty data via RAM evictions.
        for block in (0, 1, 2):
            timed(system, host.write_block(block))
        # Now the next dirty RAM eviction must evict dirty flash -> filer.
        duration = timed(system, host.write_block(3))
        assert duration >= FILER_WRITE_PATH_NS


class TestSubsetPlacement:
    def test_flash_entries_pinned_while_in_ram(self):
        system = System(tiny_config(), 1)
        host = system.hosts[0]
        timed(system, host.read_block(0))
        assert host.flash.peek(0).pinned
        # Evict block 0 from RAM by filling it.
        ram_capacity = host.ram.capacity_blocks
        for block in range(1, ram_capacity + 1):
            timed(system, host.read_block(block))
        assert 0 not in host.ram
        assert not host.flash.peek(0).pinned

    def test_ram_resident_blocks_survive_flash_pressure(self):
        config = tiny_config(ram_bytes=4 * KB, flash_bytes=16 * KB)  # 1 + 4 blocks
        system = System(config, 1)
        host = system.hosts[0]
        # Read block 0 so it is in both tiers, then push many blocks
        # through the flash.
        timed(system, host.read_block(0))
        timed(system, host.read_block(0))  # keep it hot in RAM
        for block in range(1, 10):
            timed(system, host.read_block(block))
            # Re-touch block 0 in RAM so it stays resident.
            timed(system, host.read_block(0))
        assert 0 in host.ram
        assert 0 in host.flash  # pinning kept the subset property


class TestSyncer:
    def test_periodic_syncer_flushes_dirty_blocks(self):
        config = tiny_config(
            ram_policy=WritebackPolicy.periodic(0.001),  # 1 ms period
            flash_policy=WritebackPolicy.none(),
        )
        system = System(config, 1)
        host = system.hosts[0]
        timed(system, host.write_block(0))
        assert host.ram.peek(0).dirty
        host.keep_running = lambda: system.sim.now < 2_000_000  # two periods

        host.start_syncers()
        system.sim.run()
        assert not host.ram.peek(0).dirty
        assert 0 in host.flash
