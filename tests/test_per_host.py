"""Tests for per-host result breakdowns."""

import pytest

from repro._units import MB
from repro.core.simulator import run_simulation
from repro.workloads import WorkloadSpec, data_center_mixed

from tests.helpers import make_trace, tiny_config


class TestPerHostBreakdown:
    def test_single_host_matches_aggregate(self):
        trace = make_trace([("r", 0), ("r", 0), ("w", 1)])
        results = run_simulation(trace, tiny_config())
        assert len(results.per_host) == 1
        host = results.per_host[0]
        assert host["read_blocks"] == results.read_latency.count
        assert host["read_us"] == pytest.approx(results.read_latency_us)
        assert host["write_us"] == pytest.approx(results.write_latency_us)

    def test_two_hosts_partition_the_counts(self):
        trace = make_trace([("r", 0, 0), ("r", 100, 1), ("r", 200, 1)])
        results = run_simulation(trace, tiny_config())
        assert len(results.per_host) == 2
        assert results.per_host[0]["read_blocks"] == 1
        assert results.per_host[1]["read_blocks"] == 2
        total = sum(row["read_blocks"] for row in results.per_host)
        assert total == results.read_latency.count

    def test_warmup_excluded_per_host(self):
        trace = make_trace([("r", 0, 0), ("r", 0, 0)], warmup=1)
        results = run_simulation(trace, tiny_config())
        assert results.per_host[0]["read_blocks"] == 1

    def test_summary_lists_hosts_when_multi(self):
        trace = make_trace([("r", 0, 0), ("r", 100, 1)])
        results = run_simulation(trace, tiny_config())
        assert "host 0:" in results.summary()
        assert "host 1:" in results.summary()

    def test_summary_omits_hosts_when_single(self):
        trace = make_trace([("r", 0)])
        results = run_simulation(trace, tiny_config())
        assert "host 0:" not in results.summary()

    def test_mixed_data_center_hosts_differ(self):
        """The consolidation scenario: per-host latencies reflect each
        host's workload (web vs render vs HPC), which the aggregate
        mean conceals."""
        trace = data_center_mixed(WorkloadSpec(volume_bytes=24 * MB, seed=7))
        results = run_simulation(trace, tiny_config())
        assert len(results.per_host) == 3
        reads = [row["read_us"] for row in results.per_host if row["read_blocks"]]
        assert len(reads) >= 2
        assert max(reads) > 1.1 * min(reads)  # genuinely heterogeneous
