"""Tests for the filer model."""

import random

import pytest

from repro._units import US
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.filer.server import Filer
from repro.filer.timing import FilerTiming


def make_filer(sim=None, rate=0.9, seed=3):
    sim = sim or Simulator()
    timing = FilerTiming(fast_read_rate=rate)
    return sim, Filer(sim, random.Random(seed), timing)


class TestTiming:
    def test_paper_defaults(self):
        timing = FilerTiming.paper_default()
        assert timing.fast_read_ns == 92 * US
        assert timing.slow_read_ns == 7_952 * US
        assert timing.write_ns == 92 * US
        assert timing.fast_read_rate == 0.90

    def test_expected_read(self):
        timing = FilerTiming.paper_default()
        expected = 0.9 * 92_000 + 0.1 * 7_952_000
        assert timing.expected_read_ns == pytest.approx(expected)

    def test_with_prefetch_rate(self):
        timing = FilerTiming.paper_default().with_prefetch_rate(0.8)
        assert timing.fast_read_rate == 0.8
        assert timing.fast_read_ns == 92 * US  # everything else unchanged

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            FilerTiming(fast_read_rate=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            FilerTiming(write_ns=-1)


class TestReads:
    def test_all_fast_when_rate_one(self):
        sim, filer = make_filer(rate=1.0)

        def proc():
            for _ in range(10):
                yield from filer.read_block()

        sim.run_until_complete(proc())
        assert sim.now == 10 * 92 * US
        assert filer.fast_reads == 10
        assert filer.slow_reads == 0

    def test_all_slow_when_rate_zero(self):
        sim, filer = make_filer(rate=0.0)

        def proc():
            yield from filer.read_block()

        sim.run_until_complete(proc())
        assert sim.now == 7_952 * US
        assert filer.slow_reads == 1

    def test_observed_rate_approximates_configured(self):
        sim, filer = make_filer(rate=0.9)

        def proc():
            for _ in range(5000):
                yield from filer.read_block()

        sim.run_until_complete(proc())
        assert filer.observed_fast_rate() == pytest.approx(0.9, abs=0.02)

    def test_observed_rate_empty(self):
        _sim, filer = make_filer()
        assert filer.observed_fast_rate() == 0.0


class TestWrites:
    def test_writes_always_fast(self):
        sim, filer = make_filer(rate=0.0)  # even with zero prefetch

        def proc():
            for _ in range(3):
                yield from filer.write_block()

        sim.run_until_complete(proc())
        assert sim.now == 3 * 92 * US
        assert filer.writes == 3

    def test_reset_counters(self):
        sim, filer = make_filer()

        def proc():
            yield from filer.write_block()
            yield from filer.read_block()

        sim.run_until_complete(proc())
        filer.reset_counters()
        assert filer.reads == 0
        assert filer.writes == 0


class TestParallelism:
    def test_filer_is_a_parallel_server(self):
        sim, filer = make_filer(rate=1.0)

        def reader():
            yield from filer.read_block()

        for _ in range(8):
            sim.spawn(reader())
        sim.run()
        assert sim.now == 92 * US  # all eight overlap
