"""Tests for trace manipulation tools."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.traces.tools import merge_traces, remap_host, slice_records, subsample


def simple_trace(n=6, file_blocks=100, host=0, warmup=0):
    records = [
        TraceRecord(TraceOp.READ, host, i % 2, 0, i, 1) for i in range(n)
    ]
    return Trace(records, [file_blocks], warmup_records=warmup)


class TestMerge:
    def test_hosts_assigned_per_input(self):
        merged = merge_traces([simple_trace(), simple_trace(host=3)])
        assert merged.hosts() == [0, 1]  # original hosts folded

    def test_file_geometry_offset(self):
        a = simple_trace(file_blocks=100)
        b = simple_trace(file_blocks=50)
        merged = merge_traces([a, b])
        assert merged.file_blocks == [100, 50]
        host1_records = [r for r in merged.records if r.host == 1]
        assert all(r.file_id == 1 for r in host1_records)

    def test_counts_preserved(self):
        merged = merge_traces([simple_trace(4), simple_trace(8)])
        assert len(merged) == 12
        assert sum(1 for r in merged.records if r.host == 0) == 4

    def test_interleaving_spreads_inputs(self):
        merged = merge_traces([simple_trace(5), simple_trace(5)])
        first_half_hosts = {r.host for r in merged.records[:4]}
        assert first_half_hosts == {0, 1}  # not concatenated

    def test_proportional_interleave(self):
        merged = merge_traces([simple_trace(2), simple_trace(8)])
        # The small input should not be exhausted immediately...
        hosts = [r.host for r in merged.records]
        assert 0 in hosts[2:]

    def test_concatenation_mode(self):
        merged = merge_traces([simple_trace(3), simple_trace(3)], interleave=False)
        assert [r.host for r in merged.records] == [0, 0, 0, 1, 1, 1]

    def test_warmup_summed(self):
        merged = merge_traces([simple_trace(4, warmup=2), simple_trace(4, warmup=1)])
        assert merged.warmup_records == 3

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            merge_traces([])

    def test_merged_trace_replays(self):
        from repro.core.simulator import run_simulation
        from tests.helpers import tiny_config

        merged = merge_traces([simple_trace(6), simple_trace(6)])
        results = run_simulation(merged, tiny_config())
        assert results.read_latency.count == 12

    def test_multi_host_input_preserves_issuer_streams(self):
        # Regression: folding a multi-host input onto its slot host used
        # to keep the original thread ids, collapsing (host 0, thread 0)
        # and (host 1, thread 0) into one issuer stream and silently
        # serializing previously concurrent requests.
        multi = merge_traces([simple_trace(4), simple_trace(4)])
        assert len(multi.issuers()) == 4  # 2 hosts x 2 threads
        merged = merge_traces([multi, simple_trace(4)])
        slot0_issuers = {i for i in merged.issuers() if i[0] == 0}
        assert len(slot0_issuers) == 4, (
            "multi-host input lost issuer streams in the fold: %r"
            % sorted(merged.issuers())
        )
        assert len(merged.issuers()) == 4 + 2

    def test_single_host_input_threads_unchanged(self):
        merged = merge_traces([simple_trace(4), simple_trace(4, host=5)])
        # Single-host inputs keep their thread ids verbatim.
        assert {i[1] for i in merged.issuers()} == {0, 1}


class TestSlice:
    def test_basic_slice(self):
        sliced = slice_records(simple_trace(6), 2, 5)
        assert len(sliced) == 3
        assert sliced.records[0].offset == 2

    def test_warmup_adjusts(self):
        sliced = slice_records(simple_trace(6, warmup=4), 2, 6)
        assert sliced.warmup_records == 2

    def test_warmup_clamped_to_zero(self):
        sliced = slice_records(simple_trace(6, warmup=1), 3, 6)
        assert sliced.warmup_records == 0

    def test_bad_range(self):
        with pytest.raises(TraceFormatError):
            slice_records(simple_trace(), 4, 2)

    def test_full_slice_is_no_copy(self):
        trace = simple_trace(6, warmup=2)
        assert slice_records(trace, 0, 6) is trace
        assert slice_records(trace, 0, 10) is trace  # stop past the end


class TestSubsample:
    def test_keep_every_two(self):
        thinned = subsample(simple_trace(6), 2)
        assert len(thinned) == 3
        assert [r.offset for r in thinned.records] == [0, 2, 4]

    def test_warmup_thins_proportionally(self):
        thinned = subsample(simple_trace(8, warmup=4), 2)
        assert thinned.warmup_records == 2

    def test_keep_every_one_is_identity(self):
        trace = simple_trace(5, warmup=2)
        thinned = subsample(trace, 1)
        assert thinned.records == trace.records
        assert thinned.warmup_records == 2

    def test_keep_every_one_is_no_copy(self):
        trace = simple_trace(5, warmup=2)
        assert subsample(trace, 1) is trace

    def test_bad_factor(self):
        with pytest.raises(TraceFormatError):
            subsample(simple_trace(), 0)

    def test_warmup_zero(self):
        assert subsample(simple_trace(8, warmup=0), 3).warmup_records == 0

    def test_warmup_equals_length(self):
        # All 8 records are warmup; 0, 3, 6 survive and all of them are
        # below the original boundary.
        thinned = subsample(simple_trace(8, warmup=8), 3)
        assert len(thinned) == 3
        assert thinned.warmup_records == 3

    def test_warmup_not_multiple_of_keep_every(self):
        # warmup=5, k=3: surviving indices 0 and 3 are < 5 -> ceil(5/3)=2.
        thinned = subsample(simple_trace(9, warmup=5), 3)
        assert thinned.warmup_records == 2
        # Exhaustive cross-check against the definition for a range of
        # (warmup, keep_every) combinations.
        for warmup in range(0, 13):
            for keep_every in range(2, 6):
                thinned = subsample(simple_trace(12, warmup=warmup), keep_every)
                expected = sum(
                    1 for i in range(0, 12, keep_every) if i < warmup
                )
                assert thinned.warmup_records == expected, (
                    "warmup=%d keep_every=%d" % (warmup, keep_every)
                )
                assert thinned.warmup_records <= len(thinned)


class TestRemapHost:
    def test_all_records_moved(self):
        trace = merge_traces([simple_trace(3), simple_trace(3)])
        folded = remap_host(trace, 0)
        assert folded.hosts() == [0]
        assert len(folded) == 6

    def test_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            remap_host(simple_trace(), -1)

    def test_already_on_target_host_is_no_copy(self):
        trace = simple_trace(4, host=2)
        assert remap_host(trace, 2) is trace
        assert remap_host(trace, 0) is not trace

    def test_fold_preserves_issuer_streams(self):
        # Regression: remapping a multi-host trace onto one host used to
        # keep thread ids as-is, so same-numbered threads from different
        # hosts collapsed into one issuer stream.
        trace = merge_traces([simple_trace(4), simple_trace(4)])
        before = len(trace.issuers())
        assert before == 4
        folded = remap_host(trace, 0)
        assert folded.hosts() == [0]
        assert len(folded.issuers()) == before, (
            "host fold collapsed issuer streams: %r" % folded.issuers()
        )

    def test_single_host_move_keeps_thread_ids(self):
        trace = simple_trace(4, host=3)
        moved = remap_host(trace, 0)
        assert sorted({r.thread for r in moved.records}) == [0, 1]


class TestWithoutWarmupNoCopy:
    def test_zero_warmup_returns_self(self):
        trace = simple_trace(4, warmup=0)
        assert trace.without_warmup() is trace

    def test_nonzero_warmup_still_strips(self):
        trace = simple_trace(4, warmup=2)
        stripped = trace.without_warmup()
        assert stripped is not trace
        assert len(stripped) == 2
        assert stripped.warmup_records == 0
