"""Tests for latency statistics."""

import pytest

from repro.core.metrics import LatencyStat, MetricsCollector, TimelineStat


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.count == 0
        assert stat.mean_ns == 0.0
        assert stat.percentile(0.5) == 0.0

    def test_mean_min_max(self):
        stat = LatencyStat()
        for value in (100, 200, 300):
            stat.record(value)
        assert stat.mean_ns == pytest.approx(200.0)
        assert stat.min_ns == 100
        assert stat.max_ns == 300

    def test_mean_us(self):
        stat = LatencyStat()
        stat.record(88_000)
        assert stat.mean_us == pytest.approx(88.0)

    def test_percentile_monotone(self):
        stat = LatencyStat()
        for value in range(100, 100_000, 500):
            stat.record(value)
        assert stat.percentile(0.1) <= stat.percentile(0.5) <= stat.percentile(0.99)

    def test_percentile_bucket_accuracy(self):
        stat = LatencyStat()
        for _ in range(100):
            stat.record(1_000)
        p50 = stat.percentile(0.5)
        assert 1_000 <= p50 <= 2_000  # within the bucket factor of two

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyStat().percentile(1.5)

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.count == 2
        assert a.mean_ns == pytest.approx(200.0)
        assert a.min_ns == 100
        assert a.max_ns == 300

    def test_merge_empty(self):
        a = LatencyStat()
        a.record(50)
        a.merge(LatencyStat())
        assert a.count == 1

    def test_as_dict_keys(self):
        stat = LatencyStat()
        stat.record(1000)
        data = stat.as_dict()
        assert set(data) == {"count", "mean_us", "min_us", "max_us", "p50_us", "p99_us"}

    def test_huge_latency_lands_in_last_bucket(self):
        stat = LatencyStat()
        stat.record(10**12)  # beyond the last bucket edge
        assert stat.percentile(1.0) > 0

    def test_percentile_zero_reflects_minimum(self):
        # Regression: with every observation far above the first bucket,
        # percentile(0.0) used to report the first bucket edge (100 ns)
        # instead of anything the sample actually contains.
        stat = LatencyStat()
        for _ in range(10):
            stat.record(5_000)
        assert stat.percentile(0.0) == 5_000.0

    def test_percentile_clamped_to_observed_maximum(self):
        # Regression: the raw bucket upper edge can exceed every recorded
        # value; the estimate must stay inside [min_ns, max_ns].
        stat = LatencyStat()
        for _ in range(100):
            stat.record(1_500)  # bucket upper edge is 1_600
        assert stat.percentile(0.99) == 1_500.0

    def test_percentile_never_leaves_observed_range(self):
        stat = LatencyStat()
        for value in (5_000, 7_000, 9_000):
            stat.record(value)
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            estimate = stat.percentile(fraction)
            assert stat.min_ns <= estimate <= stat.max_ns

    def test_merge_equals_combined_accumulator(self):
        # The merged accumulator must be indistinguishable from one that
        # saw both sample streams directly: min/max/count/total and every
        # histogram bucket.
        first = (100, 250, 1_500, 90_000)
        second = (50, 1_500, 2**40)
        a, b, combined = LatencyStat(), LatencyStat(), LatencyStat()
        for value in first:
            a.record(value)
        for value in second:
            b.record(value)
        for value in first + second:
            combined.record(value)
        a.merge(b)
        assert a.count == combined.count
        assert a.total_ns == combined.total_ns
        assert a.min_ns == combined.min_ns
        assert a.max_ns == combined.max_ns
        assert a._buckets == combined._buckets

    def test_bucket_index_matches_doubling_thresholds(self):
        # The closed-form bucket index must agree with the definition:
        # bucket i spans (100 * 2**(i-1), 100 * 2**i].
        for latency, expected in (
            (0, 0),
            (1, 0),
            (100, 0),
            (101, 1),
            (200, 1),
            (201, 2),
            (400, 2),
            (401, 3),
        ):
            stat = LatencyStat()
            stat.record(latency)
            assert stat._buckets[expected] == 1, latency


class TestTimelineStat:
    def test_bucket_boundaries_are_exact_multiples(self):
        timeline = TimelineStat(bucket_ns=1_000)
        timeline.record(0, 10)
        timeline.record(999, 20)       # still bucket 0
        timeline.record(1_000, 30)     # first instant of bucket 1
        timeline.record(2_500, 40)
        starts = [start for start, _mean, _count in timeline.series()]
        assert starts == [0, 1_000, 2_000]
        assert all(start % timeline.bucket_ns == 0 for start in starts)

    def test_bucket_means_and_counts(self):
        timeline = TimelineStat(bucket_ns=1_000)
        timeline.record(0, 10)
        timeline.record(999, 20)
        timeline.record(1_000, 30)
        series = timeline.series()
        assert series[0] == (0, 15.0, 2)
        assert series[1] == (1_000, 30.0, 1)
        assert len(timeline) == 2

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            TimelineStat(bucket_ns=0)


class TestMetricsCollector:
    def test_gating_before_measurement(self):
        collector = MetricsCollector()
        collector.record_block(False, 100)
        assert collector.read_latency.count == 0

    def test_records_after_measurement_begins(self):
        collector = MetricsCollector()
        collector.begin_measurement(12345)
        collector.record_block(False, 100)
        collector.record_block(True, 200)
        assert collector.read_latency.count == 1
        assert collector.write_latency.count == 1
        assert collector.blocks_read == 1
        assert collector.blocks_written == 1
        assert collector.measurement_start_ns == 12345

    def test_begin_measurement_idempotent(self):
        collector = MetricsCollector()
        collector.begin_measurement(10)
        collector.begin_measurement(99)
        assert collector.measurement_start_ns == 10

    def test_request_latency_split(self):
        collector = MetricsCollector()
        collector.begin_measurement(0)
        collector.record_request(False, 1_000)
        collector.record_request(True, 2_000)
        assert collector.read_request_latency.count == 1
        assert collector.write_request_latency.count == 1
