"""Tests for latency statistics."""

import pickle
import random

import pytest

from repro.core.metrics import (
    DEFAULT_SKETCH_ERROR,
    LatencyStat,
    MetricsCollector,
    PercentileSketch,
    SKETCH_ENV,
    TimelineStat,
    _sketch_error_from_env,
)
from repro.errors import ConfigError


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.count == 0
        assert stat.mean_ns == 0.0
        assert stat.percentile(0.5) == 0.0

    def test_mean_min_max(self):
        stat = LatencyStat()
        for value in (100, 200, 300):
            stat.record(value)
        assert stat.mean_ns == pytest.approx(200.0)
        assert stat.min_ns == 100
        assert stat.max_ns == 300

    def test_mean_us(self):
        stat = LatencyStat()
        stat.record(88_000)
        assert stat.mean_us == pytest.approx(88.0)

    def test_percentile_monotone(self):
        stat = LatencyStat()
        for value in range(100, 100_000, 500):
            stat.record(value)
        assert stat.percentile(0.1) <= stat.percentile(0.5) <= stat.percentile(0.99)

    def test_percentile_bucket_accuracy(self):
        stat = LatencyStat()
        for _ in range(100):
            stat.record(1_000)
        p50 = stat.percentile(0.5)
        assert 1_000 <= p50 <= 2_000  # within the bucket factor of two

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyStat().percentile(1.5)

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.count == 2
        assert a.mean_ns == pytest.approx(200.0)
        assert a.min_ns == 100
        assert a.max_ns == 300

    def test_merge_empty(self):
        a = LatencyStat()
        a.record(50)
        a.merge(LatencyStat())
        assert a.count == 1

    def test_as_dict_keys(self):
        stat = LatencyStat()
        stat.record(1000)
        data = stat.as_dict()
        assert set(data) == {"count", "mean_us", "min_us", "max_us", "p50_us", "p99_us"}

    def test_huge_latency_lands_in_last_bucket(self):
        stat = LatencyStat()
        stat.record(10**12)  # beyond the last bucket edge
        assert stat.percentile(1.0) > 0

    def test_percentile_zero_reflects_minimum(self):
        # Regression: with every observation far above the first bucket,
        # percentile(0.0) used to report the first bucket edge (100 ns)
        # instead of anything the sample actually contains.
        stat = LatencyStat()
        for _ in range(10):
            stat.record(5_000)
        assert stat.percentile(0.0) == 5_000.0

    def test_percentile_clamped_to_observed_maximum(self):
        # Regression: the raw bucket upper edge can exceed every recorded
        # value; the estimate must stay inside [min_ns, max_ns].
        stat = LatencyStat()
        for _ in range(100):
            stat.record(1_500)  # bucket upper edge is 1_600
        assert stat.percentile(0.99) == 1_500.0

    def test_percentile_never_leaves_observed_range(self):
        stat = LatencyStat()
        for value in (5_000, 7_000, 9_000):
            stat.record(value)
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            estimate = stat.percentile(fraction)
            assert stat.min_ns <= estimate <= stat.max_ns

    def test_merge_equals_combined_accumulator(self):
        # The merged accumulator must be indistinguishable from one that
        # saw both sample streams directly: min/max/count/total and every
        # histogram bucket.
        first = (100, 250, 1_500, 90_000)
        second = (50, 1_500, 2**40)
        a, b, combined = LatencyStat(), LatencyStat(), LatencyStat()
        for value in first:
            a.record(value)
        for value in second:
            b.record(value)
        for value in first + second:
            combined.record(value)
        a.merge(b)
        assert a.count == combined.count
        assert a.total_ns == combined.total_ns
        assert a.min_ns == combined.min_ns
        assert a.max_ns == combined.max_ns
        assert a._buckets == combined._buckets

    def test_bucket_index_matches_doubling_thresholds(self):
        # The closed-form bucket index must agree with the definition:
        # bucket i spans (100 * 2**(i-1), 100 * 2**i].
        for latency, expected in (
            (0, 0),
            (1, 0),
            (100, 0),
            (101, 1),
            (200, 1),
            (201, 2),
            (400, 2),
            (401, 3),
        ):
            stat = LatencyStat()
            stat.record(latency)
            assert stat._buckets[expected] == 1, latency


class TestPercentileSketch:
    def test_empty(self):
        sketch = PercentileSketch(0.01)
        assert sketch.count == 0
        assert sketch.percentile(0.5) == 0.0

    def test_relative_error_bound_holds(self):
        rng = random.Random(1234)
        samples = [int(rng.lognormvariate(8.0, 1.5)) + 1 for _ in range(5000)]
        for error in (0.01, 0.05, 0.2):
            sketch = PercentileSketch(error)
            for value in samples:
                sketch.record(value)
            ordered = sorted(samples)
            for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
                exact = ordered[int(fraction * (len(ordered) - 1))]
                estimate = sketch.percentile(fraction)
                assert abs(estimate - exact) <= error * exact, (
                    "e=%g p%g" % (error, fraction)
                )

    def test_zero_values(self):
        sketch = PercentileSketch(0.01)
        for value in (0, 0, 0, 100):
            sketch.record(value)
        assert sketch.percentile(0.5) == 0.0
        assert sketch.percentile(1.0) == pytest.approx(100, rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PercentileSketch(0.01).record(-1)

    def test_rejects_bad_error(self):
        with pytest.raises(ValueError):
            PercentileSketch(0.0)
        with pytest.raises(ValueError):
            PercentileSketch(1.0)

    def test_merge_matches_single_sketch(self):
        rng = random.Random(99)
        samples = [int(rng.expovariate(0.001)) + 1 for _ in range(2000)]
        whole = PercentileSketch(0.02)
        left, right = PercentileSketch(0.02), PercentileSketch(0.02)
        for index, value in enumerate(samples):
            whole.record(value)
            (left if index % 2 else right).record(value)
        left.merge(right)
        assert left.count == whole.count
        for fraction in (0.5, 0.9, 0.99):
            assert left.percentile(fraction) == whole.percentile(fraction)

    def test_merge_rejects_mismatched_error(self):
        with pytest.raises(ValueError):
            PercentileSketch(0.01).merge(PercentileSketch(0.02))

    def test_merge_rejects_near_identical_gamma(self):
        # Pre-fix, the check tolerated |gamma_a - gamma_b| <= 1e-12,
        # which let sketches built from *distinct* relative errors merge
        # silently when both gammas were within float noise of each
        # other — mixing incompatible bucket geometries.
        near_a, near_b = 1e-13, 3e-13
        sketch_a = PercentileSketch(near_a)
        sketch_b = PercentileSketch(near_b)
        assert abs(sketch_a._gamma - sketch_b._gamma) <= 1e-12
        with pytest.raises(ValueError):
            sketch_a.merge(sketch_b)

    def test_merge_accepts_equal_error(self):
        sketch_a = PercentileSketch(0.01)
        sketch_b = PercentileSketch(0.01)
        sketch_a.record(10)
        sketch_b.record(20)
        sketch_a.merge(sketch_b)
        assert sketch_a.count == 2

    def test_collapse_preserves_bound_above_collapsed_region(self):
        # The max_buckets collapse folds the lowest bucket upward; the
        # cumulative counts at and above the surviving buckets are
        # unchanged, so quantiles that resolve above the collapsed
        # region must keep the relative-error bound — and match an
        # uncapped sketch fed the same stream exactly.
        error = 0.01
        rng = random.Random(1234)
        samples = [rng.uniform(1, 1e9) for _ in range(4000)]
        capped = PercentileSketch(error, max_buckets=64)
        uncapped = PercentileSketch(error, max_buckets=1 << 20)
        for value in samples:
            capped.record(value)
            uncapped.record(value)
        assert len(capped._buckets) <= 64
        ordered = sorted(samples)
        for fraction in (0.9, 0.95, 0.99, 0.999):
            exact = ordered[int(fraction * (len(ordered) - 1))]
            estimate = capped.percentile(fraction)
            assert estimate == uncapped.percentile(fraction)
            assert abs(estimate - exact) <= error * exact * (1 + 1e-9)

    def test_memory_bounded_by_bucket_cap(self):
        sketch = PercentileSketch(0.01, max_buckets=16)
        rng = random.Random(7)
        for _ in range(5000):
            sketch.record(rng.uniform(1, 1e12))
        assert len(sketch._buckets) <= 16
        assert sketch.count == 5000
        # High percentiles keep their bound (collapse eats the low tail).
        assert sketch.percentile(0.99) > 0

    def test_pickle_round_trip(self):
        sketch = PercentileSketch(0.03)
        for value in (10, 100, 1000):
            sketch.record(value)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == 3
        assert clone.percentile(0.5) == sketch.percentile(0.5)
        clone.record(5)  # still usable after unpickle
        assert clone.count == 4

    def test_as_dict(self):
        sketch = PercentileSketch(0.01)
        sketch.record(500)
        summary = sketch.as_dict()
        assert summary["count"] == 1
        assert summary["p50"] == pytest.approx(500, rel=0.01)


class TestSketchEnvKnob:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(SKETCH_ENV, raising=False)
        assert _sketch_error_from_env() is None
        assert MetricsCollector().read_latency.sketch is None

    def test_flag_values(self, monkeypatch):
        for value in ("0", "off", "false", "no", ""):
            monkeypatch.setenv(SKETCH_ENV, value)
            assert _sketch_error_from_env() is None
        for value in ("1", "on", "true", "yes"):
            monkeypatch.setenv(SKETCH_ENV, value)
            assert _sketch_error_from_env() == DEFAULT_SKETCH_ERROR

    def test_explicit_error(self, monkeypatch):
        monkeypatch.setenv(SKETCH_ENV, "0.05")
        assert _sketch_error_from_env() == 0.05

    def test_bad_values_raise(self, monkeypatch):
        for value in ("nope", "-0.1", "1.5"):
            monkeypatch.setenv(SKETCH_ENV, value)
            with pytest.raises(ConfigError):
                _sketch_error_from_env()

    def test_collector_env_enables_all_stats(self, monkeypatch):
        monkeypatch.setenv(SKETCH_ENV, "0.02")
        collector = MetricsCollector()
        for stat in (
            collector.read_latency,
            collector.write_latency,
            collector.read_request_latency,
            collector.write_request_latency,
        ):
            assert stat.sketch is not None
            assert stat.sketch.relative_error == 0.02

    def test_collector_explicit_error_wins(self, monkeypatch):
        monkeypatch.delenv(SKETCH_ENV, raising=False)
        collector = MetricsCollector(sketch_error=0.1)
        assert collector.read_latency.sketch.relative_error == 0.1


class TestLatencyStatSketchIntegration:
    def test_record_feeds_sketch(self):
        stat = LatencyStat(sketch=PercentileSketch(0.01))
        for value in (1000, 2000, 3000):
            stat.record(value)
        assert stat.sketch.count == 3
        assert stat.sketch.percentile(0.5) == pytest.approx(2000, rel=0.01)

    def test_as_dict_includes_sketch_percentiles(self):
        stat = LatencyStat(sketch=PercentileSketch(0.01))
        stat.record(5_000)
        summary = stat.as_dict()
        assert summary["sketch_p50_us"] == pytest.approx(5.0, rel=0.01)
        assert "sketch_p99_us" in summary
        assert "sketch_p50_us" not in LatencyStat().as_dict()

    def test_merge_merges_sketches(self):
        a = LatencyStat(sketch=PercentileSketch(0.01))
        b = LatencyStat(sketch=PercentileSketch(0.01))
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.sketch.count == 2

    def test_merge_tolerates_sketchless_peer(self):
        a = LatencyStat(sketch=PercentileSketch(0.01))
        b = LatencyStat()
        a.record(100)
        b.record(300)
        a.merge(b)  # must not raise
        assert a.count == 2
        assert a.sketch.count == 1

    def test_pickle_round_trip_with_sketch(self):
        stat = LatencyStat(sketch=PercentileSketch(0.01))
        stat.record(1000)
        clone = pickle.loads(pickle.dumps(stat))
        assert clone.count == 1
        assert clone.sketch is not None
        assert clone.sketch.count == 1

    def test_unpickles_pre_sketch_payload(self):
        # A LatencyStat pickled before the sketch slot existed has no
        # "sketch" key in its state dict; __setstate__ must default it.
        stat = LatencyStat()
        stat.record(1000)
        state = stat.__getstate__()
        del state["sketch"]
        revived = LatencyStat()
        revived.__setstate__(state)
        assert revived.count == 1
        assert revived.sketch is None
        revived.record(2000)  # still records without a sketch

    def test_sketch_absent_from_signature_fields(self):
        # The drift gates hash count/total/min/max/buckets only; the
        # sketch must not leak into that set.
        from repro.validation.differential import _latency_fingerprint

        plain = LatencyStat()
        sketched = LatencyStat(sketch=PercentileSketch(0.01))
        for value in (100, 900, 42_000):
            plain.record(value)
            sketched.record(value)
        assert _latency_fingerprint(plain) == _latency_fingerprint(sketched)


class TestTimelineStat:
    def test_bucket_boundaries_are_exact_multiples(self):
        timeline = TimelineStat(bucket_ns=1_000)
        timeline.record(0, 10)
        timeline.record(999, 20)       # still bucket 0
        timeline.record(1_000, 30)     # first instant of bucket 1
        timeline.record(2_500, 40)
        starts = [start for start, _mean, _count in timeline.series()]
        assert starts == [0, 1_000, 2_000]
        assert all(start % timeline.bucket_ns == 0 for start in starts)

    def test_bucket_means_and_counts(self):
        timeline = TimelineStat(bucket_ns=1_000)
        timeline.record(0, 10)
        timeline.record(999, 20)
        timeline.record(1_000, 30)
        series = timeline.series()
        assert series[0] == (0, 15.0, 2)
        assert series[1] == (1_000, 30.0, 1)
        assert len(timeline) == 2

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            TimelineStat(bucket_ns=0)


class TestMetricsCollector:
    def test_gating_before_measurement(self):
        collector = MetricsCollector()
        collector.record_block(False, 100)
        assert collector.read_latency.count == 0

    def test_records_after_measurement_begins(self):
        collector = MetricsCollector()
        collector.begin_measurement(12345)
        collector.record_block(False, 100)
        collector.record_block(True, 200)
        assert collector.read_latency.count == 1
        assert collector.write_latency.count == 1
        assert collector.blocks_read == 1
        assert collector.blocks_written == 1
        assert collector.measurement_start_ns == 12345

    def test_begin_measurement_idempotent(self):
        collector = MetricsCollector()
        collector.begin_measurement(10)
        collector.begin_measurement(99)
        assert collector.measurement_start_ns == 10

    def test_request_latency_split(self):
        collector = MetricsCollector()
        collector.begin_measurement(0)
        collector.record_request(False, 1_000)
        collector.record_request(True, 2_000)
        assert collector.read_request_latency.count == 1
        assert collector.write_request_latency.count == 1
