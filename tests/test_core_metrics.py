"""Tests for latency statistics."""

import pytest

from repro.core.metrics import LatencyStat, MetricsCollector


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.count == 0
        assert stat.mean_ns == 0.0
        assert stat.percentile(0.5) == 0.0

    def test_mean_min_max(self):
        stat = LatencyStat()
        for value in (100, 200, 300):
            stat.record(value)
        assert stat.mean_ns == pytest.approx(200.0)
        assert stat.min_ns == 100
        assert stat.max_ns == 300

    def test_mean_us(self):
        stat = LatencyStat()
        stat.record(88_000)
        assert stat.mean_us == pytest.approx(88.0)

    def test_percentile_monotone(self):
        stat = LatencyStat()
        for value in range(100, 100_000, 500):
            stat.record(value)
        assert stat.percentile(0.1) <= stat.percentile(0.5) <= stat.percentile(0.99)

    def test_percentile_bucket_accuracy(self):
        stat = LatencyStat()
        for _ in range(100):
            stat.record(1_000)
        p50 = stat.percentile(0.5)
        assert 1_000 <= p50 <= 2_000  # within the bucket factor of two

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyStat().percentile(1.5)

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.count == 2
        assert a.mean_ns == pytest.approx(200.0)
        assert a.min_ns == 100
        assert a.max_ns == 300

    def test_merge_empty(self):
        a = LatencyStat()
        a.record(50)
        a.merge(LatencyStat())
        assert a.count == 1

    def test_as_dict_keys(self):
        stat = LatencyStat()
        stat.record(1000)
        data = stat.as_dict()
        assert set(data) == {"count", "mean_us", "min_us", "max_us", "p50_us", "p99_us"}

    def test_huge_latency_lands_in_last_bucket(self):
        stat = LatencyStat()
        stat.record(10**12)  # beyond the last bucket edge
        assert stat.percentile(1.0) > 0


class TestMetricsCollector:
    def test_gating_before_measurement(self):
        collector = MetricsCollector()
        collector.record_block(False, 100)
        assert collector.read_latency.count == 0

    def test_records_after_measurement_begins(self):
        collector = MetricsCollector()
        collector.begin_measurement(12345)
        collector.record_block(False, 100)
        collector.record_block(True, 200)
        assert collector.read_latency.count == 1
        assert collector.write_latency.count == 1
        assert collector.blocks_read == 1
        assert collector.blocks_written == 1
        assert collector.measurement_start_ns == 12345

    def test_begin_measurement_idempotent(self):
        collector = MetricsCollector()
        collector.begin_measurement(10)
        collector.begin_measurement(99)
        assert collector.measurement_start_ns == 10

    def test_request_latency_split(self):
        collector = MetricsCollector()
        collector.begin_measurement(0)
        collector.record_request(False, 1_000)
        collector.record_request(True, 2_000)
        assert collector.read_request_latency.count == 1
        assert collector.write_request_latency.count == 1
