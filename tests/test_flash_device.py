"""Tests for the FlashDevice timing model."""

import pytest

from repro._units import US
from repro.engine.simulation import Simulator
from repro.errors import ConfigError
from repro.flash.device import FlashDevice
from repro.flash.timing import FlashTiming


def run_ops(device, sim, ops):
    """Run a sequence of 'r'/'w' ops sequentially; return total time."""

    def proc():
        for op in ops:
            if op == "r":
                yield from device.read_block()
            else:
                yield from device.write_block()

    sim.run_until_complete(proc())
    return sim.now


class TestTimingPresets:
    def test_paper_default_values(self):
        timing = FlashTiming.paper_default()
        assert timing.read_ns == 88 * US
        assert timing.write_ns == 21 * US

    def test_scaled_read_keeps_ratio(self):
        timing = FlashTiming.scaled_read(44 * US)
        assert timing.read_ns == 44 * US
        # write scales proportionally: 44/88 * 21 us
        assert timing.write_ns == pytest.approx(10.5 * US, abs=1)

    def test_scaled_factor(self):
        doubled = FlashTiming.paper_default().scaled(2.0)
        assert doubled.read_ns == 176 * US
        assert doubled.write_ns == 42 * US

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            FlashTiming(read_ns=-1)

    def test_pcm_preset_is_fast(self):
        pcm = FlashTiming.phase_change_memory()
        assert pcm.read_ns < FlashTiming.paper_default().read_ns


class TestDeviceLatency:
    def test_read_charges_read_latency(self):
        sim = Simulator()
        device = FlashDevice(sim)
        assert run_ops(device, sim, "r") == 88 * US

    def test_write_charges_write_latency(self):
        sim = Simulator()
        device = FlashDevice(sim)
        assert run_ops(device, sim, "w") == 21 * US

    def test_sequential_ops_accumulate(self):
        sim = Simulator()
        device = FlashDevice(sim)
        assert run_ops(device, sim, "rw") == 109 * US

    def test_counters(self):
        sim = Simulator()
        device = FlashDevice(sim)
        run_ops(device, sim, "rrw")
        assert device.blocks_read == 2
        assert device.blocks_written == 1
        device.reset_counters()
        assert device.blocks_read == 0


class TestPersistentMetadata:
    def test_write_latency_doubles(self):
        sim = Simulator()
        device = FlashDevice(sim, persistent_metadata=True)
        assert device.write_latency_ns == 42 * US
        assert run_ops(device, sim, "w") == 42 * US

    def test_read_latency_unchanged(self):
        sim = Simulator()
        device = FlashDevice(sim, persistent_metadata=True)
        assert run_ops(device, sim, "r") == 88 * US


class TestParallelism:
    def test_unlimited_parallelism_overlaps(self):
        sim = Simulator()
        device = FlashDevice(sim)  # parallelism=0 -> latency server

        def reader():
            yield from device.read_block()

        for _ in range(4):
            sim.spawn(reader())
        sim.run()
        assert sim.now == 88 * US  # all four overlap completely

    def test_limited_parallelism_queues(self):
        sim = Simulator()
        device = FlashDevice(sim, parallelism=2)

        def reader():
            yield from device.read_block()

        for _ in range(4):
            sim.spawn(reader())
        sim.run()
        assert sim.now == 2 * 88 * US  # two waves of two
