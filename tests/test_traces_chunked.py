"""Tests for the bounded-memory chunked trace representation."""

import json
import pickle

import pytest

from repro.core.simulator import run_simulation
from repro.errors import ConfigError, TraceFormatError
from repro.tracegen import generate_trace, generate_trace_chunked
from repro.traces.chunked import (
    CHUNK_RECORDS_ENV,
    DEFAULT_CHUNK_RECORDS,
    ChunkedCompiledTrace,
    ChunkedTraceWriter,
    chunk_records_default,
)
from repro.traces.compiled import compile_trace
from repro.traces.records import Trace, TraceOp, TraceRecord
from repro.validation.differential import full_signature, result_signature
from tests.helpers import tiny_config


def sample_trace(n=40, warmup=10, hosts=2, threads=2, files=(64, 128)):
    records = []
    for i in range(n):
        records.append(
            TraceRecord(
                TraceOp.WRITE if i % 3 == 0 else TraceOp.READ,
                i % hosts,
                (i // hosts) % threads,
                i % len(files),
                i % 32,
                1 + i % 4,
            )
        )
    return Trace(
        records,
        list(files),
        warmup_records=warmup,
        metadata={"source": "unit-test"},
    )


@pytest.fixture
def chunked_pair():
    trace = sample_trace()
    chunked = ChunkedCompiledTrace.from_trace(trace, chunk_records=7)
    yield trace, chunked
    chunked.delete()


class TestRoundTrip:
    def test_lengths_and_geometry(self, chunked_pair):
        trace, chunked = chunked_pair
        assert len(chunked) == len(trace)
        assert chunked.warmup_records == trace.warmup_records
        assert chunked.file_blocks == trace.file_blocks
        assert chunked.hosts() == trace.hosts()
        assert chunked.metadata == trace.metadata

    def test_fingerprint_matches_compile_trace(self, chunked_pair):
        trace, chunked = chunked_pair
        assert chunked.fingerprint == compile_trace(trace).fingerprint

    def test_iter_records_round_trips(self, chunked_pair):
        trace, chunked = chunked_pair
        expected = [
            (
                1 if r.is_write else 0,
                r.host,
                r.thread,
                r.file_id,
                r.offset,
                r.nblocks,
            )
            for r in trace.records
        ]
        assert list(chunked.iter_records()) == expected
        # Re-iterable, not a one-shot generator.
        assert list(chunked.iter_records()) == expected

    def test_to_trace_round_trips(self, chunked_pair):
        trace, chunked = chunked_pair
        revived = chunked.to_trace()
        assert revived.records == trace.records
        assert revived.warmup_records == trace.warmup_records
        assert revived.file_blocks == trace.file_blocks

    def test_from_compiled_trace_equivalent(self, chunked_pair):
        trace, chunked = chunked_pair
        via_compiled = ChunkedCompiledTrace.from_trace(
            compile_trace(trace), chunk_records=7
        )
        try:
            assert via_compiled.fingerprint == chunked.fingerprint
        finally:
            via_compiled.delete()

    def test_chunk_size_does_not_change_content(self):
        trace = sample_trace()
        fingerprints = set()
        for chunk_records in (1, 3, 16, 1000):
            chunked = ChunkedCompiledTrace.from_trace(
                trace, chunk_records=chunk_records
            )
            try:
                fingerprints.add(chunked.fingerprint)
            finally:
                chunked.delete()
        assert len(fingerprints) == 1

    def test_replay_identical_to_materialized(self, chunked_pair):
        trace, chunked = chunked_pair
        config = tiny_config()
        materialized = run_simulation(compile_trace(trace), config)
        streamed = run_simulation(chunked, config)
        assert full_signature(streamed) == full_signature(materialized)


class TestWarmupSkip:
    def test_without_warmup_drops_rows(self, chunked_pair):
        trace, chunked = chunked_pair
        stripped = chunked.without_warmup()
        try:
            assert len(stripped) == len(trace) - trace.warmup_records
            assert stripped.warmup_records == 0
            expected = [
                (
                    1 if r.is_write else 0,
                    r.host,
                    r.thread,
                    r.file_id,
                    r.offset,
                    r.nblocks,
                )
                for r in trace.records[trace.warmup_records:]
            ]
            assert list(stripped.iter_records()) == expected
        finally:
            stripped.close()

    def test_without_warmup_fingerprint_parity(self, chunked_pair):
        trace, chunked = chunked_pair
        stripped = chunked.without_warmup()
        try:
            assert (
                stripped.fingerprint
                == compile_trace(trace.without_warmup()).fingerprint
            )
        finally:
            stripped.close()

    def test_zero_warmup_without_warmup_is_self(self):
        trace = sample_trace(warmup=0)
        chunked = ChunkedCompiledTrace.from_trace(trace)
        try:
            assert chunked.without_warmup() is chunked
        finally:
            chunked.delete()

    def test_all_warmup_issuer_dropped_from_plan(self):
        # host 1's only record sits inside the warmup prefix; after the
        # skip its issuer must not appear in the replay plan at all.
        records = [
            TraceRecord(TraceOp.READ, 1, 0, 0, 0, 1),
            TraceRecord(TraceOp.READ, 0, 0, 0, 1, 1),
            TraceRecord(TraceOp.READ, 0, 0, 0, 2, 1),
        ]
        trace = Trace(records, [64], warmup_records=1)
        chunked = ChunkedCompiledTrace.from_trace(trace)
        stripped = chunked.without_warmup()
        try:
            issuers = [
                (host, thread)
                for host, thread, _warm, _measured in stripped.issuer_plan()
            ]
            assert (1, 0) not in issuers
            assert (0, 0) in issuers
        finally:
            stripped.close()
            chunked.delete()

    def test_full_warmup_yields_empty_replay(self):
        # warmup_records == n_records: the cold-start view is empty —
        # no crash, no issuers, and the chunked form must agree with
        # the in-memory compiled form on every surface.
        trace = sample_trace(n=20, warmup=20)
        compiled_stripped = compile_trace(trace).without_warmup()
        chunked = ChunkedCompiledTrace.from_trace(trace, chunk_records=7)
        stripped = chunked.without_warmup()
        try:
            assert len(stripped) == len(compiled_stripped) == 0
            assert stripped.warmup_records == 0
            assert stripped.warmup_blocks() == 0
            assert stripped.issuer_plan() == []
            assert stripped.hosts() == compiled_stripped.hosts() == []
            assert list(stripped.iter_records()) == []
            assert stripped.fingerprint == compiled_stripped.fingerprint
        finally:
            stripped.close()
            chunked.delete()

    def test_full_warmup_empty_replay_runs(self):
        # The empty cold-start view must still replay end to end.
        trace = sample_trace(n=20, warmup=20)
        chunked = ChunkedCompiledTrace.from_trace(trace, chunk_records=7)
        stripped = chunked.without_warmup()
        try:
            results = run_simulation(stripped, tiny_config())
            assert results.blocks_read == 0
            assert results.blocks_written == 0
        finally:
            stripped.close()
            chunked.delete()

    def test_without_warmup_of_stripped_is_self(self, chunked_pair):
        _, chunked = chunked_pair
        stripped = chunked.without_warmup()
        try:
            assert stripped.without_warmup() is stripped
        finally:
            stripped.close()

    def test_reopen_of_reopen_preserves_skip_view(self, chunked_pair):
        # A stripped view reopened from its own spool path (what a
        # pickled worker of a pickled worker does) must keep the same
        # content, fingerprint, and warmup accounting as the original.
        trace, chunked = chunked_pair
        stripped = chunked.without_warmup()
        first = ChunkedCompiledTrace.open(
            stripped.spool_dir, skip=trace.warmup_records
        )
        second = ChunkedCompiledTrace.open(
            first.spool_dir, skip=trace.warmup_records
        )
        try:
            assert second.fingerprint == stripped.fingerprint
            assert len(second) == len(stripped)
            assert second.warmup_records == 0
            assert list(second.iter_records()) == list(stripped.iter_records())
        finally:
            stripped.close()
            first.close()
            second.close()

    def test_double_pickle_preserves_skip_view(self, chunked_pair):
        trace, chunked = chunked_pair
        stripped = chunked.without_warmup()
        once = pickle.loads(pickle.dumps(stripped))
        twice = pickle.loads(pickle.dumps(once))
        try:
            assert twice.fingerprint == stripped.fingerprint
            assert len(twice) == len(stripped)
            assert twice.warmup_records == 0
            assert (
                twice.fingerprint
                == compile_trace(trace.without_warmup()).fingerprint
            )
        finally:
            stripped.close()
            once.close()
            twice.close()


class TestPersistence:
    def test_open_existing_spool(self, tmp_path, chunked_pair):
        trace, _ = chunked_pair
        spool = tmp_path / "spool"
        first = ChunkedCompiledTrace.from_trace(trace, spool_dir=spool)
        fingerprint = first.fingerprint
        first.close()
        reopened = ChunkedCompiledTrace.open(spool)
        try:
            assert reopened.fingerprint == fingerprint
            assert len(reopened) == len(trace)
        finally:
            reopened.delete()

    def test_pickle_round_trip(self, chunked_pair):
        _, chunked = chunked_pair
        clone = pickle.loads(pickle.dumps(chunked))
        try:
            assert clone.fingerprint == chunked.fingerprint
            assert list(clone.iter_records()) == list(chunked.iter_records())
        finally:
            clone.close()

    def test_pickle_preserves_skip(self, chunked_pair):
        _, chunked = chunked_pair
        stripped = chunked.without_warmup()
        try:
            clone = pickle.loads(pickle.dumps(stripped))
            try:
                assert len(clone) == len(stripped)
                assert clone.warmup_records == 0
            finally:
                clone.close()
        finally:
            stripped.close()

    def test_open_rejects_non_spool(self, tmp_path):
        with pytest.raises(TraceFormatError, match="not a chunked trace spool"):
            ChunkedCompiledTrace.open(tmp_path)

    def test_open_rejects_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(TraceFormatError, match="corrupt"):
            ChunkedCompiledTrace.open(tmp_path)

    def test_truncated_chunks_detected(self, tmp_path, chunked_pair):
        trace, _ = chunked_pair
        spool = tmp_path / "spool"
        chunked = ChunkedCompiledTrace.from_trace(trace, spool_dir=spool)
        chunked.close()
        chunks = spool / "chunks.bin"
        chunks.write_bytes(chunks.read_bytes()[:-8])
        reopened = ChunkedCompiledTrace.open(spool)
        try:
            with pytest.raises(TraceFormatError, match="truncated"):
                list(reopened.iter_records())
        finally:
            reopened.close()

    def test_truncated_rows_detected(self, tmp_path, chunked_pair):
        trace, _ = chunked_pair
        spool = tmp_path / "spool"
        chunked = ChunkedCompiledTrace.from_trace(trace, spool_dir=spool)
        chunked.close()
        rows = spool / "rows.bin"
        rows.write_bytes(rows.read_bytes()[:-8])
        reopened = ChunkedCompiledTrace.open(spool)
        try:
            with pytest.raises(TraceFormatError, match="truncated row"):
                for _host, _thread, warm, measured in reopened.issuer_plan():
                    list(warm)
                    list(measured)
        finally:
            reopened.close()

    def test_manifest_is_versioned_json(self, tmp_path, chunked_pair):
        trace, _ = chunked_pair
        spool = tmp_path / "spool"
        chunked = ChunkedCompiledTrace.from_trace(trace, spool_dir=spool)
        try:
            manifest = json.loads((spool / "manifest.json").read_text())
            assert manifest["version"] == 1
            assert manifest["n_records"] == len(trace)
            assert manifest["fingerprint"] == chunked.fingerprint
        finally:
            chunked.delete()


class TestWriter:
    def test_spool_reuse_rejected(self, tmp_path, chunked_pair):
        trace, _ = chunked_pair
        spool = tmp_path / "spool"
        first = ChunkedCompiledTrace.from_trace(trace, spool_dir=spool)
        first.close()
        with pytest.raises(TraceFormatError, match="already holds"):
            ChunkedTraceWriter([64], spool_dir=spool)

    def test_append_after_freeze_rejected(self):
        writer = ChunkedTraceWriter([64])
        writer.append(False, 0, 0, 0, 0, 1)
        trace = writer.freeze()
        try:
            with pytest.raises(TraceFormatError, match="frozen"):
                writer.append(False, 0, 0, 0, 1, 1)
            with pytest.raises(TraceFormatError, match="already frozen"):
                writer.freeze()
        finally:
            trace.delete()

    def test_frozen_geometry_validates(self):
        writer = ChunkedTraceWriter([8])
        try:
            with pytest.raises(TraceFormatError, match="references file"):
                writer.append(False, 0, 0, 1, 0, 1)
            with pytest.raises(TraceFormatError, match="overruns"):
                writer.append(False, 0, 0, 0, 7, 2)
            with pytest.raises(TraceFormatError, match="non-negative"):
                writer.append(False, 0, 0, 0, -1, 1)
            with pytest.raises(TraceFormatError, match=">= 1 block"):
                writer.append(False, 0, 0, 0, 0, 0)
        finally:
            writer.abort()

    def test_deferred_geometry_grows(self):
        writer = ChunkedTraceWriter()
        writer.append(False, 0, 0, 2, 10, 4)
        trace = writer.freeze()
        try:
            assert trace.file_blocks == [1, 1, 14]
        finally:
            trace.delete()

    def test_warmup_out_of_range_rejected(self):
        writer = ChunkedTraceWriter([64])
        writer.append(False, 0, 0, 0, 0, 1)
        with pytest.raises(TraceFormatError, match="out of range"):
            writer.freeze(warmup_records=2)
        writer.abort()

    def test_empty_trace(self):
        trace = ChunkedTraceWriter([4]).freeze()
        try:
            assert len(trace) == 0
            assert list(trace.iter_records()) == []
            assert trace.fingerprint == compile_trace(Trace([], [4])).fingerprint
        finally:
            trace.delete()

    def test_abort_removes_temp_spool(self):
        writer = ChunkedTraceWriter([64])
        spool = writer.spool_dir
        writer.append(False, 0, 0, 0, 0, 1)
        writer.abort()
        assert not spool.exists()


class TestChunkSizeKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(CHUNK_RECORDS_ENV, raising=False)
        assert chunk_records_default() == DEFAULT_CHUNK_RECORDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CHUNK_RECORDS_ENV, "1024")
        assert chunk_records_default() == 1024

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv(CHUNK_RECORDS_ENV, "zero")
        with pytest.raises(ConfigError, match="must be an integer"):
            chunk_records_default()
        monkeypatch.setenv(CHUNK_RECORDS_ENV, "0")
        with pytest.raises(ConfigError, match=">= 1"):
            chunk_records_default()

    def test_writer_rejects_bad_chunk_records(self):
        with pytest.raises(TraceFormatError, match=">= 1"):
            ChunkedTraceWriter([64], chunk_records=0)


class TestGenerateChunked:
    def test_matches_materialized_generation(self):
        from repro.fsmodel.impressions import ImpressionsConfig
        from repro.tracegen import TraceGenConfig

        config = TraceGenConfig(
            fs=ImpressionsConfig(total_bytes=16 << 20),
            working_set_bytes=4 << 20,
            n_hosts=2,
            threads_per_host=2,
            volume_multiple=1.0,
            seed=7,
        )
        materialized = generate_trace(config)
        chunked = generate_trace_chunked(config, chunk_records=512)
        try:
            assert chunked.fingerprint == compile_trace(materialized).fingerprint
            sim = tiny_config()
            assert result_signature(
                run_simulation(chunked, sim)
            ) == result_signature(run_simulation(materialized, sim))
        finally:
            chunked.delete()
