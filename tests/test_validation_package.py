"""Tests for the repro.validation package (the §6 harness as a library)."""


from repro._units import MB
from repro.core.architectures import Architecture
from repro.fsmodel.impressions import ImpressionsConfig
from repro.tracegen.config import TraceGenConfig
from repro.tracegen.generator import generate_trace
from repro.validation import ValidationReport, cross_check, replay_reference

from tests.helpers import tiny_config


def make_trace(threads=1, write_fraction=0.3, ws_mb=4):
    return generate_trace(
        TraceGenConfig(
            fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB, seed=1),
            working_set_bytes=ws_mb * MB,
            threads_per_host=threads,
            write_fraction=write_fraction,
            seed=33,
        )
    )


class TestReferenceReplay:
    def test_counts_cover_measured_blocks(self):
        trace = make_trace()
        config = tiny_config()
        reference = replay_reference(trace, config)
        measured = trace.records[trace.warmup_records :]
        expected_reads = sum(r.nblocks for r in measured if not r.is_write)
        expected_writes = sum(r.nblocks for r in measured if r.is_write)
        assert reference.read_blocks == expected_reads
        assert reference.write_blocks == expected_writes
        assert len(reference.read_levels) == expected_reads

    def test_hit_rates_bounded(self):
        reference = replay_reference(make_trace(), tiny_config())
        assert 0.0 <= reference.ram_hit_rate <= 1.0
        assert 0.0 <= reference.flash_hit_rate <= 1.0

    def test_expected_latency_positive(self):
        config = tiny_config()
        reference = replay_reference(make_trace(), config)
        assert reference.expected_read_mean_ns(config) > 0

    def test_no_flash_config(self):
        config = tiny_config(flash_bytes=0)
        reference = replay_reference(make_trace(), config)
        assert reference.flash_hits == 0
        assert reference.expected_read_mean_ns(config) > 0


class TestCrossCheck:
    def test_read_only_single_thread_agrees_exactly(self):
        """No writes, one thread: deterministic order, both models apply
        the same LRU rules — agreement should be essentially exact."""
        report = cross_check(
            make_trace(threads=1, write_fraction=0.0), tiny_config()
        )
        assert report.passed, report.summary()
        assert report.metrics["ram_hit_rate"]["difference"] < 0.01
        assert report.metrics["flash_hit_rate"]["difference"] < 0.01
        assert report.metrics["read_latency_ns"]["difference"] < 0.01

    def test_read_only_multi_thread_within_ten_percent(self):
        """Interleaving perturbs LRU order; the paper's 10% bar holds."""
        report = cross_check(
            make_trace(threads=8, write_fraction=0.0), tiny_config()
        )
        assert report.passed, report.summary()

    def test_writes_diverge_boundedly(self):
        """Background flushes land in the flash later than the
        reference's synchronous inserts, so write-carrying runs drift —
        but boundedly (documented in cross_check)."""
        report = cross_check(
            make_trace(threads=1, write_fraction=0.3),
            tiny_config(),
            tolerance=0.15,
        )
        assert report.passed, report.summary()

    def test_no_flash_run_validates(self):
        report = cross_check(
            make_trace(threads=1, write_fraction=0.0), tiny_config(flash_bytes=0)
        )
        assert report.passed, report.summary()
        assert "flash_hit_rate" not in report.metrics

    def test_normalizes_architecture(self):
        """cross_check always validates the naive reference scope, even
        when handed another architecture's config."""
        config = tiny_config(architecture=Architecture.UNIFIED)
        report = cross_check(make_trace(threads=1, write_fraction=0.0), config)
        assert report.passed, report.summary()

    def test_summary_format(self):
        report = cross_check(make_trace(threads=1, write_fraction=0.0), tiny_config())
        text = report.summary()
        assert "PASSED" in text
        assert "ram_hit_rate" in text


class TestReportMechanics:
    def test_rate_vs_relative_difference(self):
        report = ValidationReport(tolerance=0.10)
        report.add("rate", 0.50, 0.45, rate=True)   # diff 0.05 -> pass
        report.add("value", 110.0, 100.0)           # diff 10% -> pass
        assert report.passed
        report.add("bad", 200.0, 100.0)             # diff 100% -> fail
        assert not report.passed
        assert report.failures() == ["bad"]

    def test_zero_reference_safe(self):
        report = ValidationReport()
        report.add("zero", 0.0, 0.0)
        assert report.passed
