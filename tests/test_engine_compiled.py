"""Tests for the table-driven compiled simulation kernel.

The compiled kernel (:mod:`repro.engine.compiled`) exists purely for
speed: eligible replays must be bit-identical to the generator kernel.
These tests pin the eligibility gate, prove the kernel actually engages
(rather than silently falling back), and drive a randomized property
sweep of trace/config points through both kernels comparing full
result signatures.
"""

from __future__ import annotations

import random

import pytest

from repro.core.architectures import Architecture
from repro.core.machine import System
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation
from repro.engine.compiled import COMPILE_KERNEL_ENV, kernel_eligible
from repro.experiments.common import DEFAULT_SCALE, baseline_config, baseline_trace
from repro.traces.compiled import compile_trace
from repro.validation.differential import check_compiled_kernel_identity, full_signature

#: Coarse geometry for test speed; identities are scale-independent.
FAST_SCALE = DEFAULT_SCALE * 4


def _compiled_baseline(**trace_kwargs):
    trace_kwargs.setdefault("scale", FAST_SCALE)
    return compile_trace(baseline_trace(**trace_kwargs))


def _run_both(trace, config, monkeypatch, **kwargs):
    """Replay ``trace`` under both kernels, returning both signatures."""
    monkeypatch.setenv(COMPILE_KERNEL_ENV, "0")
    reference = full_signature(run_simulation(trace, config, **kwargs))
    monkeypatch.setenv(COMPILE_KERNEL_ENV, "1")
    candidate = full_signature(run_simulation(trace, config, **kwargs))
    return reference, candidate


class TestEligibility:
    def test_baseline_is_eligible(self):
        system = System(baseline_config(scale=FAST_SCALE), n_hosts=1)
        assert kernel_eligible(system)

    def test_env_opt_out(self, monkeypatch):
        system = System(baseline_config(scale=FAST_SCALE), n_hosts=1)
        monkeypatch.setenv(COMPILE_KERNEL_ENV, "0")
        assert not kernel_eligible(system)
        monkeypatch.setenv(COMPILE_KERNEL_ENV, "off")
        assert not kernel_eligible(system)
        monkeypatch.setenv(COMPILE_KERNEL_ENV, "1")
        assert kernel_eligible(system)

    def test_observation_falls_back(self):
        from repro.obs import Observation

        system = System(
            baseline_config(scale=FAST_SCALE), n_hosts=1, obs=Observation()
        )
        assert not kernel_eligible(system)

    def test_restart_falls_back(self):
        from repro.core.restart import RestartSpec

        system = System(
            baseline_config(scale=FAST_SCALE),
            n_hosts=1,
            restart=RestartSpec(volatile_flash=True),
        )
        assert not kernel_eligible(system)

    def test_timeline_falls_back(self):
        system = System(
            baseline_config(scale=FAST_SCALE),
            n_hosts=1,
            timeline_bucket_ns=1_000_000,
        )
        assert not kernel_eligible(system)

    def test_exclusive_architecture_falls_back(self):
        system = System(
            baseline_config(scale=FAST_SCALE, architecture=Architecture.EXCLUSIVE),
            n_hosts=1,
        )
        assert not kernel_eligible(system)

    def test_channel_limited_flash_falls_back(self):
        system = System(
            baseline_config(scale=FAST_SCALE, flash_parallelism=4), n_hosts=1
        )
        assert not kernel_eligible(system)

    def test_invariants_stay_eligible(self):
        system = System(
            baseline_config(scale=FAST_SCALE), n_hosts=1, check_invariants=True
        )
        assert kernel_eligible(system)


class TestKernelEngages:
    """Prove the compiled path actually runs (no silent fallback)."""

    def _spawned_names(self, monkeypatch, env_value):
        monkeypatch.setenv(COMPILE_KERNEL_ENV, env_value)
        system = System(baseline_config(scale=FAST_SCALE), n_hosts=1)
        names = []
        system.sim.trace_hook = names.append
        system.replay(_compiled_baseline())
        return names

    def test_compiled_kernel_spawns_no_issuer_processes(self, monkeypatch):
        # Application issuers and syncers run as _Task frames under the
        # compiled kernel, so no generator process is ever spawned for
        # them; the object kernel spawns one "app.h*" per thread.
        assert not any(
            name.startswith("app.h")
            for name in self._spawned_names(monkeypatch, "1")
        )
        assert any(
            name.startswith("app.h")
            for name in self._spawned_names(monkeypatch, "0")
        )


class TestKernelIdentity:
    def test_differential_check_passes(self):
        check = check_compiled_kernel_identity(scale=FAST_SCALE)
        assert check.passed, check.detail

    def test_chunked_trace_replays_identically(self, monkeypatch, tmp_path):
        from repro.traces.chunked import ChunkedCompiledTrace

        trace = baseline_trace(n_hosts=2, scale=FAST_SCALE, volume_multiple=2.0)
        chunked = ChunkedCompiledTrace.from_trace(trace, spool_dir=tmp_path)
        reference, candidate = _run_both(
            chunked, baseline_config(scale=FAST_SCALE), monkeypatch
        )
        assert reference == candidate

    def test_cold_start_replays_identically(self, monkeypatch):
        reference, candidate = _run_both(
            _compiled_baseline(),
            baseline_config(scale=FAST_SCALE),
            monkeypatch,
            cold_start=True,
        )
        assert reference == candidate


#: The knob space the randomized property sweep draws from.
_ARCHITECTURES = (
    Architecture.NAIVE,
    Architecture.LOOKASIDE,
    Architecture.UNIFIED,
    Architecture.EXCLUSIVE,  # ineligible: exercises the fallback path
)
_POLICIES = ("s", "a", "n", "p10", "p30", "p60", "t30", "d30")
_ADMISSIONS = ("always", "always", "probationary:2", "budget:8M")
_CLEANINGS = ("periodic", "periodic", "alru:30", "acp:0.5:0.25")


class TestKernelPropertySweep:
    """Randomized mini replay programs through both kernels.

    Each case draws a trace shape (hosts, write mix, sharing, seed) and
    a config point (architecture, tier sizes, writeback policies,
    admission/cleaning controllers, FTL model, invalidation traffic,
    invariants) from a seeded RNG and asserts the two kernels produce
    identical full signatures — timelines, histogram buckets, cache and
    device counters, per-host breakdowns.
    """

    @pytest.mark.parametrize("case_seed", range(10))
    def test_random_point_is_bit_identical(self, case_seed, monkeypatch):
        rng = random.Random(0xC0DE + case_seed)
        trace = compile_trace(
            baseline_trace(
                ws_gb=rng.choice((20.0, 60.0)),
                write_fraction=rng.choice((0.0, 0.1, 0.3, 0.6)),
                n_hosts=rng.choice((1, 2, 3)),
                shared_working_set=rng.random() < 0.7,
                seed=rng.randrange(1 << 16),
                scale=FAST_SCALE,
                volume_multiple=2.0,
            )
        )
        architecture = rng.choice(_ARCHITECTURES)
        overrides = {
            "architecture": architecture,
            "ram_policy": WritebackPolicy.parse(rng.choice(_POLICIES)),
            "flash_policy": WritebackPolicy.parse(rng.choice(_POLICIES)),
        }
        ram_gb, flash_gb = rng.choice(((8.0, 64.0), (2.0, 16.0), (8.0, 0.0), (0.0, 64.0)))
        if architecture is Architecture.EXCLUSIVE and (
            flash_gb == 0.0 or ram_gb == 0.0
        ):
            ram_gb, flash_gb = 8.0, 64.0
        if flash_gb > 0.0:
            if architecture in (Architecture.NAIVE, Architecture.LOOKASIDE):
                overrides["flash_admission"] = rng.choice(_ADMISSIONS)
                overrides["flash_cleaning"] = rng.choice(_CLEANINGS)
            if rng.random() < 0.3:
                overrides["ftl_model"] = True
                overrides["flash_parallelism"] = 0
        if rng.random() < 0.3:
            overrides["model_invalidation_traffic"] = True
        config = baseline_config(
            ram_gb=ram_gb, flash_gb=flash_gb, scale=FAST_SCALE, **overrides
        )
        reference, candidate = _run_both(
            trace,
            config,
            monkeypatch,
            check_invariants=rng.random() < 0.5,
        )
        assert reference == candidate, [
            key for key in reference if reference[key] != candidate[key]
        ]
