"""Tests for the observability layer (``repro.obs``).

The load-bearing property: the per-request latency breakdown is
*exact* — for every replayed block, the attributed components sum to
the end-to-end application latency in nanoseconds, with nothing lost
(``unattributed_ns == 0``) — and attaching an Observation never changes
the simulation itself (bit-identical results with tracing on and off).
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import MB
from repro.core.architectures import Architecture
from repro.core.policies import WritebackPolicy
from repro.core.simulator import run_simulation
from repro.obs import (
    COMPONENTS,
    EventKind,
    EventRecorder,
    Observation,
    to_chrome_trace,
    validate_jsonl,
    write_jsonl,
)
from repro.obs.events import TraceEvent
from tests.helpers import make_trace, tiny_config

ARCHITECTURES = [
    Architecture.NAIVE,
    Architecture.LOOKASIDE,
    Architecture.UNIFIED,
]

#: A sample of the paper's 7x7 writeback-policy grid (Figure 2's axes),
#: covering every policy kind on each axis.
POLICY_SAMPLE = [
    (WritebackPolicy.sync(), WritebackPolicy.sync()),
    (WritebackPolicy.asynchronous(), WritebackPolicy.asynchronous()),
    (WritebackPolicy.periodic(1), WritebackPolicy.periodic(5)),
    (WritebackPolicy.periodic(15), WritebackPolicy.asynchronous()),
    (WritebackPolicy.none(), WritebackPolicy.sync()),
    (WritebackPolicy.asynchronous(), WritebackPolicy.none()),
    (WritebackPolicy.periodic(30), WritebackPolicy.periodic(30)),
]


def mixed_trace(n_ops: int = 600, seed: int = 3, span: int = 700):
    """A deterministic read/write mix with enough reuse to hit caches."""
    import random

    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        block = rng.randrange(span)
        ops.append(("w" if rng.random() < 0.3 else "r", block))
    return make_trace(ops, file_blocks=max(4096, span))


def assert_exact_breakdown(results):
    breakdown = results.breakdown
    assert breakdown is not None
    assert breakdown.unattributed_ns == 0
    assert breakdown.mismatched_blocks == 0
    assert sum(breakdown.read_ns.values()) == results.read_latency.total_ns
    assert sum(breakdown.write_ns.values()) == results.write_latency.total_ns
    assert breakdown.read_blocks == results.read_latency.count
    assert breakdown.write_blocks == results.write_latency.count


class TestBreakdownExactness:
    @pytest.mark.parametrize("arch", ARCHITECTURES, ids=lambda a: a.value)
    @pytest.mark.parametrize(
        "policies", POLICY_SAMPLE, ids=lambda p: "%s-%s" % (p[0], p[1])
    )
    def test_components_sum_exactly(self, arch, policies):
        ram_policy, flash_policy = policies
        config = tiny_config(
            architecture=arch, ram_policy=ram_policy, flash_policy=flash_policy
        )
        obs = Observation()
        results = run_simulation(mixed_trace(), config, obs=obs)
        assert_exact_breakdown(results)
        # something beyond RAM was actually exercised
        assert sum(results.breakdown.read_ns.values()) > 0

    @pytest.mark.parametrize("arch", ARCHITECTURES, ids=lambda a: a.value)
    def test_stochastic_filer_still_exact(self, arch):
        from tests.helpers import deterministic_timing

        config = tiny_config(
            architecture=arch, timing=deterministic_timing(fast_read_rate=0.5)
        )
        results = run_simulation(mixed_trace(seed=11), config, obs=Observation())
        assert_exact_breakdown(results)

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["r", "w"]), st.integers(min_value=0, max_value=96)
            ),
            min_size=1,
            max_size=120,
        ),
    )
    def test_property_exact_for_any_trace(self, data, ops):
        arch = data.draw(st.sampled_from(ARCHITECTURES))
        ram_policy, flash_policy = data.draw(st.sampled_from(POLICY_SAMPLE))
        config = tiny_config(
            architecture=arch,
            ram_bytes=64 * 4096,
            flash_bytes=256 * 4096,
            ram_policy=ram_policy,
            flash_policy=flash_policy,
        )
        trace = make_trace(ops, file_blocks=4096)
        results = run_simulation(trace, config, obs=Observation())
        assert_exact_breakdown(results)

    def test_multi_host_exact(self):
        ops = [("r", b, h) for b in range(120) for h in (0, 1)] + [
            ("w", b, h) for b in range(0, 120, 3) for h in (0, 1)
        ]
        trace = make_trace(ops, file_blocks=4096)
        config = tiny_config(architecture=Architecture.NAIVE)
        results = run_simulation(trace, config, n_hosts=2, obs=Observation())
        assert_exact_breakdown(results)

    def test_exclusive_arch_falls_back_to_other(self):
        # The EXCLUSIVE extension is uninstrumented: whole latencies
        # land in the "other" component, and the sum stays exact.
        config = tiny_config(architecture=Architecture.EXCLUSIVE)
        results = run_simulation(mixed_trace(), config, obs=Observation())
        assert_exact_breakdown(results)
        read_ns = results.breakdown.read_ns
        assert read_ns["other"] == results.read_latency.total_ns
        assert all(read_ns[c] == 0 for c in COMPONENTS if c != "other")

    def test_warmup_excluded_like_latency_stats(self):
        ops = [("r", b) for b in range(50)] * 2
        trace = make_trace(ops, file_blocks=4096, warmup=50)
        results = run_simulation(trace, tiny_config(), obs=Observation())
        assert_exact_breakdown(results)
        assert results.breakdown.read_blocks == 50


class TestTracingIsInert:
    """Attaching an Observation must not change the simulation."""

    @pytest.mark.parametrize("arch", ARCHITECTURES, ids=lambda a: a.value)
    def test_bit_identical_results(self, arch):
        from tests.helpers import deterministic_timing

        config = tiny_config(
            architecture=arch,
            timing=deterministic_timing(fast_read_rate=0.7),
            ram_policy=WritebackPolicy.periodic(1),
        )
        trace = mixed_trace(seed=5)
        plain = run_simulation(trace, config)
        traced = run_simulation(trace, config, obs=Observation())
        plain_dict = plain.as_dict()
        traced_dict = traced.as_dict()
        traced_dict.pop("breakdown")
        traced_dict.pop("obs_counters")
        assert plain_dict == traced_dict
        assert plain.simulated_ns == traced.simulated_ns
        assert plain.read_latency.total_ns == traced.read_latency.total_ns
        assert plain.write_latency.total_ns == traced.write_latency.total_ns

    def test_config_flag_equivalent_to_explicit_obs(self):
        trace = mixed_trace(seed=8)
        config = tiny_config()
        explicit = run_simulation(trace, config, obs=Observation())
        implicit = run_simulation(
            trace, config.with_overrides(trace_events=True)
        )
        assert implicit.breakdown is not None
        assert implicit.obs_counters == explicit.obs_counters
        assert implicit.breakdown.as_dict() == explicit.breakdown.as_dict()


class TestRecorder:
    def test_max_events_caps_list_not_counters(self):
        recorder = EventRecorder(max_events=3)
        for ts in range(10):
            recorder.emit(ts, EventKind.TIER_HIT, tier="ram")
        assert len(recorder.events) == 3
        assert recorder.dropped_events == 7
        snapshot = recorder.counters_snapshot()
        assert snapshot[EventKind.TIER_HIT] == 10
        assert snapshot["dropped_events"] == 7

    def test_observation_requires_some_sink(self):
        with pytest.raises(ValueError):
            Observation(events=False, breakdown=False)

    def test_breakdown_only_observation(self):
        obs = Observation(events=False)
        results = run_simulation(mixed_trace(), tiny_config(), obs=obs)
        assert_exact_breakdown(results)
        assert obs.events == []
        assert obs.counters() == {}


class TestEventStream:
    @pytest.fixture(scope="class")
    def traced(self):
        obs = Observation()
        results = run_simulation(
            mixed_trace(), tiny_config(ram_policy=WritebackPolicy.periodic(1)), obs=obs
        )
        return obs, results

    def test_timestamps_monotone(self, traced):
        obs, _results = traced
        timestamps = [event.ts for event in obs.events]
        assert timestamps == sorted(timestamps)

    def test_request_events_balance(self, traced):
        obs, results = traced
        counters = obs.counters()
        assert counters[EventKind.REQUEST_START] == results.records_replayed
        assert counters[EventKind.REQUEST_FINISH] == results.records_replayed

    def test_tier_events_cover_block_reads(self, traced):
        obs, results = traced
        counters = obs.counters()
        lookups = counters[EventKind.TIER_HIT] + counters[EventKind.TIER_MISS]
        # every app read consults RAM (and flash on a RAM miss): at
        # least one lookup event per read block, at most two.
        assert lookups >= results.blocks_read
        assert lookups <= 2 * results.blocks_read

    def test_filer_events_match_filer_counters(self, traced):
        obs, results = traced
        counters = obs.counters()
        assert counters.get(EventKind.FILER_READ, 0) == results.filer_reads
        assert counters.get(EventKind.FILER_WRITE, 0) == results.filer_writes

    def test_eviction_events_carry_dirty_flag(self):
        obs = Observation()
        # RAM of 8 blocks, no flash: heavy writes force dirty evictions.
        config = tiny_config(ram_bytes=8 * 4096, flash_bytes=0)
        run_simulation(
            make_trace([("w", b) for b in range(64)], file_blocks=4096),
            config,
            obs=obs,
        )
        evictions = [e for e in obs.events if e.kind == EventKind.EVICTION]
        assert evictions
        assert all(isinstance(e.info.get("dirty"), bool) for e in evictions)


class TestExporters:
    def events_fixture(self):
        obs = Observation()
        run_simulation(mixed_trace(n_ops=120), tiny_config(), obs=obs)
        return obs

    def test_jsonl_round_trip_validates(self, tmp_path):
        obs = self.events_fixture()
        path = tmp_path / "events.jsonl"
        written = obs.write_jsonl(str(path))
        assert written == len(obs.events)
        assert validate_jsonl(str(path)) == written

    def test_validate_rejects_unknown_kind(self):
        stream = io.StringIO('{"ts": 1, "kind": "no_such_kind"}\n')
        with pytest.raises(ValueError, match="unknown kind"):
            validate_jsonl(stream)

    def test_validate_rejects_backwards_time(self):
        stream = io.StringIO(
            '{"ts": 5, "kind": "tier_hit"}\n{"ts": 4, "kind": "tier_hit"}\n'
        )
        with pytest.raises(ValueError, match="backwards"):
            validate_jsonl(stream)

    def test_validate_rejects_non_integer_fields(self):
        stream = io.StringIO('{"ts": 1, "kind": "tier_hit", "dur": "fast"}\n')
        with pytest.raises(ValueError, match="integer"):
            validate_jsonl(stream)

    def test_chrome_trace_loads_and_uses_integer_tids(self, tmp_path):
        obs = self.events_fixture()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path))
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        for entry in document["traceEvents"]:
            assert isinstance(entry["tid"], int)
            assert entry["ph"] in ("X", "i", "M")
            if entry["ph"] == "X":
                assert entry["ts"] >= 0
                assert entry["dur"] >= 0

    def test_chrome_request_slices_span_the_request(self):
        events = [
            TraceEvent(ts=1000, kind=EventKind.REQUEST_START, host=0),
            TraceEvent(ts=5000, kind=EventKind.REQUEST_FINISH, host=0, dur=4000),
        ]
        document = to_chrome_trace(events)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == 1.0  # microseconds
        assert slices[0]["dur"] == 4.0

    def test_chrome_service_slices_are_start_anchored(self):
        events = [
            TraceEvent(ts=2000, kind=EventKind.DEVICE_READ, host=0, dur=3000,
                       tier="flash"),
        ]
        document = to_chrome_trace(events)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["ts"] == 2.0
        assert slices[0]["dur"] == 3.0

    def test_jsonl_writes_to_stream(self):
        events = [TraceEvent(ts=1, kind=EventKind.TIER_HIT, tier="ram")]
        stream = io.StringIO()
        assert write_jsonl(events, stream) == 1
        payload = json.loads(stream.getvalue())
        assert payload == {"ts": 1, "kind": "tier_hit", "tier": "ram"}


class TestResultsSurface:
    def test_summary_renders_breakdown(self):
        results = run_simulation(mixed_trace(), tiny_config(), obs=Observation())
        summary = results.summary()
        assert "latency breakdown" in summary
        assert "filer_service" in summary

    def test_markdown_breakdown_table(self):
        from repro.report import breakdown_to_markdown

        results = run_simulation(mixed_trace(), tiny_config(), obs=Observation())
        table = breakdown_to_markdown(results.breakdown)
        assert "| component |" in table
        assert "**total**" in table
