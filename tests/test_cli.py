"""Tests for the two command-line tools."""

import pytest

from repro.experiments import runner
from repro.tracegen import cli
from repro.traces.format import load_trace


class TestParseSize:
    def test_plain_bytes(self):
        assert cli.parse_size("4096") == 4096

    @pytest.mark.parametrize(
        "text,expected",
        [("4K", 4096), ("1M", 1024**2), ("2G", 2 * 1024**3), ("1T", 1024**4)],
    )
    def test_suffixes(self, text, expected):
        assert cli.parse_size(text) == expected

    def test_lowercase_and_fractional(self):
        assert cli.parse_size("0.5m") == 512 * 1024


class TestTracegenCli:
    def test_generate_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "t.trace"
        status = cli.main(
            [
                "--fs-size", "32M",
                "--working-set", "4M",
                "--out", str(out),
                "--seed", "5",
            ]
        )
        assert status == 0
        trace = load_trace(out)
        assert len(trace) > 0

        status = cli.main(["--inspect", str(out)])
        assert status == 0
        captured = capsys.readouterr()
        assert "records:" in captured.out

    def test_binary_output(self, tmp_path):
        out = tmp_path / "t.btrace"
        status = cli.main(
            ["--fs-size", "32M", "--working-set", "4M", "--out", str(out), "--binary"]
        )
        assert status == 0
        assert out.read_bytes().startswith(b"RPTRC")

    def test_missing_out_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_bad_config_reports_error(self, tmp_path, capsys):
        status = cli.main(
            [
                "--fs-size", "4M",
                "--working-set", "32M",  # WS bigger than the server model
                "--out", str(tmp_path / "x.trace"),
            ]
        )
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestExperimentsRunner:
    def test_table1(self, capsys):
        status = runner.main(["table1"])
        assert status == 0
        out = capsys.readouterr().out
        assert "Timing Model Parameters" in out
        assert "88.0 us" in out

    def test_unknown_experiment(self, capsys):
        status = runner.main(["figure99"])
        assert status == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        # The error names every valid choice.
        for name in runner.EXPERIMENTS:
            assert name in err

    def test_experiment_list_is_complete(self):
        assert len(runner.PAPER_EXPERIMENTS) == 13  # table1 + figures 1..12
        assert set(runner.EXTENSION_EXPERIMENTS) == {
            "placement",
            "recovery",
            "recovery_timeline",
            "multihost",
            "extended_policies",
            "scenarios",
            "tail_latency",
            "sensitivity",
            "section74",
            "consistency_traffic",
            "ablations",
            "endurance",
            "fleet",
        }

    def test_chart_flag(self, capsys):
        status = runner.main(["figure4", "--fast", "--scale", "65536", "--chart"])
        assert status == 0
        out = capsys.readouterr().out
        assert "noflash_us" in out
        assert "|" in out  # the chart's y axis

    def test_extensions_alias(self, capsys, monkeypatch):
        # Just validate name resolution, not a full (slow) run.
        monkeypatch.setattr(
            runner,
            "run_one",
            lambda name, scale, fast, chart=False, workers=None: (
                "ran %s" % name,
                None,
            ),
        )
        status = runner.main(["extensions"])
        assert status == 0
        out = capsys.readouterr().out
        for name in runner.EXTENSION_EXPERIMENTS:
            assert "ran %s" % name in out

    def test_workers_flag_forwarded(self, capsys, monkeypatch):
        seen = {}

        def fake_run_one(name, scale, fast, chart=False, workers=None):
            seen[name] = workers
            return "ran %s" % name, None

        monkeypatch.setattr(runner, "run_one", fake_run_one)
        status = runner.main(["table1", "--workers", "3"])
        assert status == 0
        assert seen == {"table1": 3}

    def test_cache_flag_sets_default_dir(self, tmp_path, capsys, monkeypatch):
        from repro import sweep

        monkeypatch.setattr(
            runner,
            "run_one",
            lambda name, scale, fast, chart=False, workers=None: ("ok", None),
        )
        cache_dir = tmp_path / "sweep-cache"
        previous = sweep.default_cache_dir()
        try:
            status = runner.main(["table1", "--cache", str(cache_dir)])
            assert status == 0
            assert str(sweep.default_cache_dir()) == str(cache_dir)
        finally:
            sweep.set_default_cache_dir(previous)


class TestExperimentRegistry:
    def test_get_known(self):
        from repro import experiments

        spec = experiments.get("figure4")
        assert spec.name == "figure4"
        assert spec.kind == "paper"
        assert callable(spec.run)

    def test_get_unknown_raises_config_error(self):
        from repro import experiments
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="figure4"):
            experiments.get("nope")

    def test_available_kinds(self):
        from repro import experiments

        everything = experiments.available()
        paper = experiments.available(kind="paper")
        extensions = experiments.available(kind="extension")
        assert set(paper).isdisjoint(extensions)
        assert set(everything) == set(paper) | set(extensions)
        with pytest.raises(Exception):
            experiments.available(kind="bogus")

    def test_report_flag(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        status = runner.main(
            ["figure4", "--fast", "--scale", "65536", "--report", str(report)]
        )
        assert status == 0
        content = report.read_text()
        assert content.startswith("# Experiment report")
        assert "## figure4" in content
        assert "noflash_us" in content


class TestObsCli:
    def test_traced_replay_writes_both_exports(self, tmp_path, capsys):
        from repro.obs import cli as obs_cli
        from repro.obs import validate_jsonl

        jsonl = tmp_path / "events.jsonl"
        chrome = tmp_path / "trace.json"
        status = obs_cli.main(
            [
                "--scale", "65536",
                "--trace-out", str(jsonl),
                "--chrome-out", str(chrome),
            ]
        )
        assert status == 0
        captured = capsys.readouterr()
        assert "latency breakdown" in captured.out
        assert "event counters:" in captured.out
        assert validate_jsonl(str(jsonl)) > 0
        import json

        document = json.loads(chrome.read_text())
        assert document["traceEvents"]

    def test_replays_trace_file(self, tmp_path, capsys):
        from repro.obs import cli as obs_cli

        out = tmp_path / "t.trace"
        assert cli.main(
            ["--fs-size", "32M", "--working-set", "2M", "--out", str(out),
             "--seed", "5"]
        ) == 0
        status = obs_cli.main(["--trace", str(out), "--no-events"])
        assert status == 0
        captured = capsys.readouterr()
        assert "latency breakdown" in captured.out

    def test_no_events_with_trace_out_is_an_error(self, capsys):
        from repro.obs import cli as obs_cli

        status = obs_cli.main(["--no-events", "--trace-out", "x.jsonl"])
        assert status == 2
