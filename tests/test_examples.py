"""Smoke tests: every example script must run cleanly.

Examples are the first thing a new user executes; breaking one is a
release blocker, so they are part of the test suite.  Each runs in a
subprocess exactly as a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example should print something"


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "design_space_sweep.py",
        "cache_sizing.py",
        "crash_recovery.py",
        "shared_data_consistency.py",
        "extensions_tour.py",
    } <= names
