"""Tests for BlockStore."""

import pytest

from repro.cache.block import Medium
from repro.cache.store import BlockStore
from repro.errors import CacheError


def full_store(capacity=3, **put_kwargs):
    store = BlockStore(capacity, name="t")
    for block in range(capacity):
        store.put(block, **put_kwargs)
    return store


class TestLookup:
    def test_get_miss_counts(self):
        store = BlockStore(4)
        assert store.get(1) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_get_hit_counts_and_touches(self):
        store = full_store()
        entry = store.get(0)
        assert entry is not None
        assert store.stats.hits == 1
        # 0 was touched, so the victim is now 1
        victim = store.pop_victim()
        assert victim.block == 1

    def test_peek_does_not_touch_or_count(self):
        store = full_store()
        store.peek(0)
        assert store.stats.hits == 0
        assert store.pop_victim().block == 0

    def test_contains(self):
        store = full_store()
        assert 0 in store
        assert 99 not in store


class TestInsertEvict:
    def test_put_then_len(self):
        store = BlockStore(4)
        store.put(7)
        assert len(store) == 1
        assert store.free_blocks == 3

    def test_duplicate_put_rejected(self):
        store = BlockStore(4)
        store.put(7)
        with pytest.raises(CacheError):
            store.put(7)

    def test_put_into_full_rejected(self):
        store = full_store()
        with pytest.raises(CacheError):
            store.put(99)

    def test_pop_victim_lru_order(self):
        store = full_store()
        assert store.pop_victim().block == 0
        assert store.pop_victim().block == 1

    def test_pop_victim_counts_dirty(self):
        store = BlockStore(2)
        store.put(1, dirty=True)
        store.put(2)
        victim = store.pop_victim()
        assert victim.block == 1
        assert victim.dirty
        assert store.stats.dirty_evictions == 1
        assert store.stats.evictions == 1

    def test_pop_victim_empty_returns_none(self):
        assert BlockStore(2).pop_victim() is None

    def test_capacity_zero_always_full(self):
        store = BlockStore(0)
        assert store.is_full()

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            BlockStore(-1)


class TestPinning:
    def test_pinned_entry_skipped(self):
        store = full_store()
        store.pin(0)
        assert store.pop_victim().block == 1

    def test_all_pinned_falls_back(self):
        store = full_store()
        for block in range(3):
            store.pin(block)
        victim = store.pop_victim()
        assert victim is not None  # pinning never deadlocks eviction

    def test_unpin_restores_victimhood(self):
        store = full_store()
        store.pin(0)
        store.unpin(0)
        assert store.pop_victim().block == 0

    def test_pin_absent_is_noop(self):
        store = BlockStore(2)
        store.pin(42)  # must not raise

    def test_skip_filter_composes_with_pins(self):
        store = full_store()
        store.pin(0)
        assert store.pop_victim(skip=lambda k: k == 1).block == 2


class TestDirtyTracking:
    def test_put_dirty_registers(self):
        store = BlockStore(4)
        store.put(1, dirty=True)
        assert store.dirty_blocks() == [1]
        assert store.dirty_count == 1

    def test_mark_dirty_then_clean(self):
        store = BlockStore(4)
        store.put(1)
        store.mark_dirty(1)
        assert store.peek(1).dirty
        store.mark_clean(1)
        assert not store.peek(1).dirty
        assert store.dirty_count == 0
        assert store.stats.writebacks == 1

    def test_mark_clean_absent_is_noop(self):
        store = BlockStore(4)
        store.mark_clean(42)  # must not raise

    def test_remove_clears_dirty(self):
        store = BlockStore(4)
        store.put(1, dirty=True)
        store.remove(1)
        assert store.dirty_count == 0

    def test_eviction_clears_dirty(self):
        store = BlockStore(1)
        store.put(1, dirty=True)
        store.pop_victim()
        assert store.dirty_count == 0


class TestRemoveAndClear:
    def test_remove_returns_entry(self):
        store = BlockStore(4)
        store.put(1, Medium.FLASH)
        entry = store.remove(1)
        assert entry.block == 1
        assert entry.medium is Medium.FLASH
        assert 1 not in store

    def test_remove_absent_returns_none(self):
        assert BlockStore(4).remove(9) is None

    def test_invalidation_counted(self):
        store = BlockStore(4)
        store.put(1)
        store.remove(1, invalidation=True)
        assert store.stats.invalidations == 1

    def test_clear_empties(self):
        store = full_store()
        store.clear()
        assert len(store) == 0
        assert store.dirty_count == 0

    def test_blocks_iterates_eviction_order(self):
        store = full_store()
        store.get(0)  # touch
        assert list(store.blocks()) == [1, 2, 0]


class TestStatsReset:
    def test_reset_zeroes_counters(self):
        store = full_store()
        store.get(0)
        store.get(99)
        store.stats.reset_for_measurement()
        assert store.stats.hits == 0
        assert store.stats.misses == 0
        assert store.stats.insertions == 0
        # contents survive the reset
        assert len(store) == 3

    def test_hit_rate(self):
        store = full_store()
        store.get(0)
        store.get(99)
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert BlockStore(2).stats.hit_rate == 0.0


class TestMarkCleanWritebackRegression:
    """mark_clean must count a writeback only on dirty->clean (a
    redundant syncer pass over an already-clean block wrote nothing)."""

    def test_redundant_mark_clean_not_counted(self):
        store = BlockStore(4)
        store.put(1, dirty=True)
        store.mark_clean(1)
        store.mark_clean(1)  # redundant second pass
        assert store.stats.writebacks == 1

    def test_mark_clean_on_clean_entry_not_counted(self):
        store = BlockStore(4)
        store.put(1)  # inserted clean
        store.mark_clean(1)
        assert store.stats.writebacks == 0

    def test_dirty_cycle_counts_each_transition(self):
        store = BlockStore(4)
        store.put(1, dirty=True)
        store.mark_clean(1)
        store.mark_dirty(1)
        store.mark_clean(1)
        assert store.stats.writebacks == 2


class TestPopVictimPrecedenceRegression:
    """pop_victim must exhaust unpinned candidates (even skip-excluded
    ones) before overriding pinning — pinning is the last resort."""

    def test_skipped_unpinned_beats_pinned(self):
        store = BlockStore(2)
        store.put(1, pinned=True)
        store.put(2)
        victim = store.pop_victim(skip=lambda block: block == 2)
        assert victim.block == 2  # pre-fix this evicted pinned block 1

    def test_unskipped_unpinned_still_preferred(self):
        store = BlockStore(3)
        store.put(1, pinned=True)
        store.put(2)
        store.put(3)
        victim = store.pop_victim(skip=lambda block: block == 2)
        assert victim.block == 3

    def test_all_unpinned_skipped_and_pinned_present(self):
        # Two unpinned-but-skipped, one pinned: both unpinned entries
        # must go before the pinned one.
        store = BlockStore(3)
        store.put(1, pinned=True)
        store.put(2)
        store.put(3)
        skip = lambda block: block in (2, 3)
        assert store.pop_victim(skip).block == 2
        assert store.pop_victim(skip).block == 3
        assert store.pop_victim(skip).block == 1  # last resort

    def test_everything_pinned_falls_back_to_skip_order(self):
        store = BlockStore(2)
        store.put(1, pinned=True)
        store.put(2, pinned=True)
        victim = store.pop_victim(skip=lambda block: block == 1)
        assert victim.block == 2

    def test_lifetime_occupancy_identity(self):
        store = BlockStore(3)
        for block in range(3):
            store.put(block)
        store.pop_victim()
        store.remove(1)
        store.put(7)
        assert (
            store.lifetime_insertions - store.lifetime_departures
            == len(store)
        )


class TestStatsConsistency:
    def test_lookup_identity_holds_after_mixed_operations(self):
        store = BlockStore(2)
        store.get(1)            # miss
        store.put(1)
        store.get(1)            # hit
        store.put(2)
        store.get(3)            # miss
        store.pop_victim()
        stats = store.stats
        stats.check_consistent()
        assert stats.accesses == stats.lookups

    def test_check_consistent_rejects_drifted_counters(self):
        # Regression: accesses (hits + misses) and lookups used to be
        # allowed to drift silently; the identity is now asserted.
        store = BlockStore(2)
        store.put(1)
        store.get(1)
        store.stats.lookups += 1  # simulate a drifted counter
        with pytest.raises(ValueError, match="lookups"):
            store.stats.check_consistent()

    def test_identity_survives_measurement_reset(self):
        store = BlockStore(2)
        store.put(1)
        store.get(1)
        store.stats.reset_for_measurement()
        store.get(1)
        store.get(9)
        store.stats.check_consistent()
        assert store.stats.accesses == store.stats.lookups == 2
