"""Property-based tests for the cache substrate (hypothesis).

The LRU store is checked against a tiny independent reference model
(an OrderedDict), and structural invariants are checked under random
operation sequences for every eviction policy.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import BlockStore

KEYS = st.integers(min_value=0, max_value=30)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("put"), KEYS),
        st.tuples(st.just("dirty"), KEYS),
        st.tuples(st.just("clean"), KEYS),
        st.tuples(st.just("remove"), KEYS),
    ),
    max_size=200,
)


class ReferenceLRU:
    """An independent, obviously-correct LRU cache used as the oracle."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()  # key -> dirty flag

    def get(self, key):
        if key not in self.entries:
            return None
        self.entries.move_to_end(key)
        return key

    def put(self, key, dirty=False):
        if key in self.entries:
            return
        if len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[key] = dirty

    def dirty(self, key):
        if key in self.entries:
            self.entries[key] = True

    def clean(self, key):
        if key in self.entries:
            self.entries[key] = False

    def remove(self, key):
        self.entries.pop(key, None)


def apply_ops(capacity, ops):
    """Run the same ops through BlockStore and the reference model."""
    store = BlockStore(capacity)
    reference = ReferenceLRU(capacity)
    for op, key in ops:
        if op == "get":
            entry = store.get(key)
            ref = reference.get(key)
            assert (entry is None) == (ref is None)
        elif op == "put":
            if store.peek(key) is None:
                if store.is_full():
                    store.pop_victim()
                store.put(key)
            reference.put(key)
        elif op == "dirty":
            if store.peek(key) is not None:
                store.mark_dirty(key)
            reference.dirty(key)
        elif op == "clean":
            store.mark_clean(key)
            reference.clean(key)
        elif op == "remove":
            store.remove(key)
            reference.remove(key)
    return store, reference


@settings(max_examples=150, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), ops=OPS)
def test_store_matches_reference_lru(capacity, ops):
    store, reference = apply_ops(capacity, ops)
    # Same membership, same eviction order, same dirty flags.
    assert list(store.blocks()) == list(reference.entries.keys())
    for key, ref_dirty in reference.entries.items():
        assert store.peek(key).dirty == ref_dirty


@settings(max_examples=150, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), ops=OPS)
def test_store_never_exceeds_capacity(capacity, ops):
    store, _reference = apply_ops(capacity, ops)
    assert len(store) <= capacity


@settings(max_examples=150, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), ops=OPS)
def test_dirty_set_matches_entry_flags(capacity, ops):
    store, _reference = apply_ops(capacity, ops)
    flagged = {key for key in store.blocks() if store.peek(key).dirty}
    assert flagged == set(store.dirty_blocks())


@settings(max_examples=100, deadline=None)
@given(
    policy=st.sampled_from(["lru", "fifo", "clock", "slru", "slru:0.3"]),
    capacity=st.integers(min_value=1, max_value=8),
    keys=st.lists(KEYS, max_size=100),
)
def test_any_policy_maintains_capacity_and_membership(policy, capacity, keys):
    store = BlockStore(capacity, policy=policy)
    inserted = set()
    for key in keys:
        if store.peek(key) is not None:
            store.get(key)
            continue
        if store.is_full():
            victim = store.pop_victim()
            inserted.discard(victim.block)
        store.put(key)
        inserted.add(key)
        assert len(store) <= capacity
        assert set(store.blocks()) == inserted


@settings(max_examples=100, deadline=None)
@given(capacity=st.integers(min_value=2, max_value=8), keys=st.lists(KEYS, min_size=1, max_size=60))
def test_pinned_blocks_survive_any_eviction_pressure(capacity, keys):
    store = BlockStore(capacity)
    pinned_key = 1000  # outside the random key range
    store.put(pinned_key, pinned=True)
    for key in keys:
        if store.peek(key) is not None:
            continue
        if store.is_full():
            store.pop_victim()
        store.put(key)
    # With capacity >= 2 there is always an unpinned candidate, so the
    # pinned block must never have been chosen.
    assert pinned_key in store
