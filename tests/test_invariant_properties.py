"""Property-style randomized micro-tests for the invariant checkers.

Seeded, stdlib-only (``random.Random``; no hypothesis): each test
drives a bare data structure through thousands of random operations and
runs the corresponding :mod:`repro.invariants` checker after *every*
operation, so any structural drift is caught at the exact op that
introduced it.  These are the micro-scale counterpart of the replay-time
sanitizer: the same check functions, without a simulation around them.
"""

import random

import pytest

from repro.cache.store import BlockStore
from repro.engine.simulation import Simulator
from repro.flash.ftl import FTLConfig, PageMappedFTL
from repro.flash.ftl_device import FTLFlashDevice
from repro.invariants import check_ftl, check_ftl_device, check_store

SEEDS = [0, 1, 2, 3]


class TestBlockStoreRandomOps:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock", "slru"])
    def test_invariants_hold_after_every_op(self, seed, policy):
        rng = random.Random(seed)
        store = BlockStore(12, policy, name="prop-%s" % policy)
        universe = 30
        for _step in range(2500):
            op = rng.randrange(9)
            block = rng.randrange(universe)
            if op == 0:
                store.get(block, touch=rng.random() < 0.8)
            elif op == 1:
                store.peek(block)
            elif op == 2:
                if block not in store and not store.is_full():
                    store.put(
                        block,
                        dirty=rng.random() < 0.3,
                        pinned=rng.random() < 0.2,
                    )
            elif op == 3:
                if rng.random() < 0.5:
                    store.pop_victim()
                else:
                    modulus = rng.randrange(2, 5)
                    store.pop_victim(skip=lambda key: key % modulus == 0)
            elif op == 4:
                store.remove(block, invalidation=rng.random() < 0.5)
            elif op == 5:
                if block in store:
                    store.mark_dirty(block)
            elif op == 6:
                store.mark_clean(block)
            elif op == 7:
                (store.pin if rng.random() < 0.5 else store.unpin)(block)
            else:
                if rng.random() < 0.05:
                    store.clear()
            check_store(store)
        # the lifetime identity held throughout; spot-check the totals
        assert (
            store.lifetime_insertions - store.lifetime_departures == len(store)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_store_with_eviction_pressure(self, seed):
        """put-heavy mix: the store stays full and every insert evicts."""
        rng = random.Random(seed)
        store = BlockStore(8, "lru", name="pressure")
        for _step in range(2000):
            block = rng.randrange(24)
            if block in store:
                store.get(block)
                if rng.random() < 0.4:
                    store.mark_dirty(block)
            else:
                while store.is_full():
                    victim = store.pop_victim()
                    if victim is None:
                        break
                store.put(block, dirty=rng.random() < 0.5)
            check_store(store)


class TestPageMappedFTLRandomOps:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_hold_after_every_op(self, seed):
        rng = random.Random(seed)
        ftl = PageMappedFTL(
            FTLConfig(
                n_blocks=10,
                pages_per_block=4,
                overprovision=0.25,
                gc_threshold_blocks=2,
            )
        )
        logical = ftl.config.logical_pages
        for _step in range(4000):
            lpn = rng.randrange(logical)
            if rng.random() < 0.85:
                ftl.write(lpn)
            else:
                ftl.trim(lpn)
            check_ftl(ftl)
        assert ftl.write_amplification >= 1.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tight_slack_geometry(self, seed):
        """Barely any overprovisioning: GC runs constantly and must keep
        every accounting invariant intact while doing so."""
        rng = random.Random(seed)
        ftl = PageMappedFTL(
            FTLConfig(
                n_blocks=8,
                pages_per_block=4,
                overprovision=0.1,
                gc_threshold_blocks=1,
            )
        )
        logical = ftl.config.logical_pages
        for lpn in range(logical):  # fill to capacity first
            ftl.write(lpn)
            check_ftl(ftl)
        for _step in range(3000):
            ftl.write(rng.randrange(logical))
            check_ftl(ftl)


class TestFTLDeviceRandomOps:
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_invariants_hold_after_every_op(self, seed):
        rng = random.Random(seed)
        device = FTLFlashDevice(Simulator(), capacity_blocks=24)
        resident = set()
        for _step in range(1500):
            if resident and (rng.random() < 0.35 or len(resident) >= 24):
                block = rng.choice(sorted(resident))
                device.trim_block(block)
                resident.discard(block)
            else:
                block = rng.randrange(200)
                if block not in resident and len(resident) >= 24:
                    continue
                list(device.write_block(block))  # drain the latency yield
                resident.add(block)
            check_ftl_device(device)
        assert set(device._lpn_of) == resident
