"""Property-based tests of the discrete-event kernel (hypothesis).

The kernel's contract: events fire in nondecreasing time order, ties
break deterministically, resources serialize without losing or
duplicating grants, and identical inputs produce identical histories.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.resources import Resource
from repro.engine.simulation import Simulator

DELAY_LISTS = st.lists(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=10),
    min_size=1,
    max_size=6,
)


def run_processes(delay_lists):
    sim = Simulator()
    log = []

    def proc(tag, delays):
        for delay in delays:
            yield delay
            log.append((sim.now, tag))

    for tag, delays in enumerate(delay_lists):
        sim.spawn(proc(tag, delays))
    sim.run()
    return log, sim.now


@settings(max_examples=100, deadline=None)
@given(delay_lists=DELAY_LISTS)
def test_time_is_monotonic(delay_lists):
    log, _end = run_processes(delay_lists)
    times = [when for when, _tag in log]
    assert times == sorted(times)


@settings(max_examples=100, deadline=None)
@given(delay_lists=DELAY_LISTS)
def test_every_step_fires_exactly_once(delay_lists):
    log, _end = run_processes(delay_lists)
    assert len(log) == sum(len(delays) for delays in delay_lists)


@settings(max_examples=100, deadline=None)
@given(delay_lists=DELAY_LISTS)
def test_end_time_is_slowest_process(delay_lists):
    _log, end = run_processes(delay_lists)
    assert end == max(sum(delays) for delays in delay_lists)


@settings(max_examples=50, deadline=None)
@given(delay_lists=DELAY_LISTS)
def test_deterministic_replay(delay_lists):
    assert run_processes(delay_lists) == run_processes(delay_lists)


@settings(max_examples=80, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    holds=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=12),
)
def test_resource_conservation(capacity, holds):
    """A FIFO resource never exceeds its capacity, grants every request
    exactly once, and its busy time equals the serialized demand bound."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    active = []
    max_active = 0
    completions = []

    def holder(duration):
        nonlocal max_active
        yield resource.acquire()
        active.append(1)
        max_active = max(max_active, len(active))
        yield duration
        active.pop()
        resource.release()
        completions.append(duration)

    for duration in holds:
        sim.spawn(holder(duration))
    sim.run()

    assert sorted(completions) == sorted(holds)  # everyone finished
    assert max_active <= capacity
    assert resource.total_acquisitions == len(holds)
    # Makespan bounds: at least the critical path, at most the serial sum.
    assert max(holds) <= sim.now <= sum(holds)


@settings(max_examples=50, deadline=None)
@given(
    holds=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10)
)
def test_capacity_one_serializes_exactly(holds):
    """With capacity 1 the makespan is exactly the sum of hold times."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def holder(duration):
        yield resource.acquire()
        yield duration
        resource.release()

    for duration in holds:
        sim.spawn(holder(duration))
    sim.run()
    assert sim.now == sum(holds)
    assert resource.utilization() == 1.0
