"""Tests for the motivating-scenario workload generators."""

import pytest

from repro._units import MB
from repro.errors import ConfigError
from repro.core.simulator import run_simulation
from repro.traces.stats import compute_stats
from repro.workloads import (
    WorkloadSpec,
    data_center_mixed,
    render_farm,
    scientific_compute,
    web_app_server,
)

from tests.helpers import tiny_config

SPEC = WorkloadSpec(volume_bytes=8 * MB, seed=5)


@pytest.fixture(scope="module")
def web():
    return web_app_server(SPEC)


@pytest.fixture(scope="module")
def render():
    return render_farm(SPEC)


@pytest.fixture(scope="module")
def hpc():
    return scientific_compute(SPEC)


class TestCommonContract:
    @pytest.mark.parametrize("factory", [web_app_server, render_farm, scientific_compute])
    def test_volume_near_target(self, factory):
        trace = factory(SPEC)
        stats = compute_stats(trace)
        target = 8 * MB // 4096
        assert stats.total_blocks >= target
        assert stats.total_blocks < target * 1.6  # bursts may overshoot

    @pytest.mark.parametrize("factory", [web_app_server, render_farm, scientific_compute])
    def test_warmup_half(self, factory):
        trace = factory(SPEC)
        warmup_blocks = sum(r.nblocks for r in trace.records[: trace.warmup_records])
        stats = compute_stats(trace)
        assert warmup_blocks == pytest.approx(stats.total_blocks / 2, rel=0.2)

    @pytest.mark.parametrize("factory", [web_app_server, render_farm, scientific_compute])
    def test_deterministic(self, factory):
        assert factory(SPEC).records == factory(SPEC).records

    @pytest.mark.parametrize("factory", [web_app_server, render_farm, scientific_compute])
    def test_replays_through_simulator(self, factory):
        results = run_simulation(factory(SPEC), tiny_config())
        assert results.read_latency.count + results.write_latency.count > 0

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(volume_bytes=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(threads=0)


class TestWebAppServer:
    def test_read_mostly(self, web):
        stats = compute_stats(web)
        assert stats.write_fraction < 0.2

    def test_small_ios(self, web):
        stats = compute_stats(web)
        assert stats.mean_io_blocks < 4

    def test_popularity_skew(self, web):
        stats = compute_stats(web)
        # Hot objects dominate well beyond a uniform workload, where
        # the top 20% of blocks would take ~20% of the accesses.
        assert stats.concentration[0.2] > 0.3


class TestRenderFarm:
    def test_large_sequential_reads(self, render):
        reads = [r for r in render.records if not r.is_write]
        mean_read = sum(r.nblocks for r in reads) / len(reads)
        assert mean_read > 8  # streaming chunks, not random 4K

    def test_sequentiality_within_assets(self, render):
        """Consecutive reads on the same (thread, file) advance forward."""
        last = {}
        forward = total = 0
        for record in render.records:
            if record.is_write:
                continue
            key = (record.thread, record.file_id)
            if key in last and record.offset == last[key]:
                forward += 1
            total += 1
            last[key] = record.offset + record.nblocks
        assert forward / total > 0.7

    def test_writes_are_frames(self, render):
        writes = [r for r in render.records if r.is_write]
        assert writes, "render farm must emit frames"
        frame_blocks = (256 * 1024) // 4096
        assert all(w.nblocks == frame_blocks for w in writes)


class TestScientificCompute:
    def test_checkpoint_bursts(self, hpc):
        """Writes arrive in dense runs, not uniformly mixed."""
        ops = ["W" if r.is_write else "R" for r in hpc.records]
        runs = []
        current = 0
        for op in ops:
            if op == "W":
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs, "expected checkpoint writes"
        assert max(runs) > 10  # a burst, not scattered single writes

    def test_checkpoints_target_checkpoint_file(self, hpc):
        writes = [r for r in hpc.records if r.is_write]
        assert all(w.file_id == 1 for w in writes)


class TestDataCenterMixed:
    def test_three_hosts(self):
        trace = data_center_mixed(SPEC)
        assert trace.hosts() == [0, 1, 2]

    def test_replays_with_consistency_tracking(self):
        trace = data_center_mixed(SPEC)
        results = run_simulation(trace, tiny_config())
        # Disjoint file regions: nothing shared, nothing invalidated.
        assert results.writes_requiring_invalidation == 0
        assert results.block_writes > 0
