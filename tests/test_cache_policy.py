"""Tests for eviction policies (LRU, FIFO, CLOCK)."""

import random

import pytest

import repro.policies as policies
from repro.cache.policy import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    SLRUPolicy,
)
from repro.errors import CacheError


def make_policy(name, capacity_blocks=0):
    """Tests build evictors through the unified registry."""
    return policies.get("eviction", name, capacity_blocks=capacity_blocks)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        lru = LRUPolicy()
        for key in (1, 2, 3):
            lru.insert(key)
        assert lru.victim() == 1

    def test_touch_promotes(self):
        lru = LRUPolicy()
        for key in (1, 2, 3):
            lru.insert(key)
        lru.touch(1)
        assert lru.victim() == 2

    def test_remove(self):
        lru = LRUPolicy()
        for key in (1, 2):
            lru.insert(key)
        lru.remove(1)
        assert lru.victim() == 2
        assert len(lru) == 1

    def test_skip_filter(self):
        lru = LRUPolicy()
        for key in (1, 2, 3):
            lru.insert(key)
        assert lru.victim(skip=lambda k: k == 1) == 2

    def test_all_skipped_returns_none(self):
        lru = LRUPolicy()
        lru.insert(1)
        assert lru.victim(skip=lambda k: True) is None

    def test_empty_victim_is_none(self):
        assert LRUPolicy().victim() is None

    def test_duplicate_insert_rejected(self):
        lru = LRUPolicy()
        lru.insert(1)
        with pytest.raises(CacheError):
            lru.insert(1)

    def test_iteration_order_lru_first(self):
        lru = LRUPolicy()
        for key in (1, 2, 3):
            lru.insert(key)
        lru.touch(1)
        assert list(lru) == [2, 3, 1]


class TestFIFO:
    def test_victim_is_oldest_insert(self):
        fifo = FIFOPolicy()
        for key in (1, 2, 3):
            fifo.insert(key)
        fifo.touch(1)  # FIFO ignores touches
        assert fifo.victim() == 1

    def test_touch_of_absent_key_rejected(self):
        with pytest.raises(CacheError):
            FIFOPolicy().touch(99)

    def test_remove_and_reinsert(self):
        fifo = FIFOPolicy()
        fifo.insert(1)
        fifo.insert(2)
        fifo.remove(1)
        fifo.insert(1)
        assert fifo.victim() == 2


class TestClock:
    def test_untouched_entry_is_victim(self):
        clock = ClockPolicy()
        for key in (1, 2, 3):
            clock.insert(key)
        assert clock.victim() == 1

    def test_touched_entry_gets_second_chance(self):
        clock = ClockPolicy()
        for key in (1, 2, 3):
            clock.insert(key)
        clock.touch(1)
        assert clock.victim() == 2

    def test_all_touched_still_finds_victim(self):
        clock = ClockPolicy()
        for key in (1, 2, 3):
            clock.insert(key)
            clock.touch(key)
        assert clock.victim() is not None

    def test_empty(self):
        assert ClockPolicy().victim() is None

    def test_skip_filter(self):
        clock = ClockPolicy()
        for key in (1, 2):
            clock.insert(key)
        assert clock.victim(skip=lambda k: k == 1) == 2


class TestSLRU:
    def test_new_keys_are_probationary_victims(self):
        slru = SLRUPolicy(protected_capacity=2)
        for key in (1, 2, 3):
            slru.insert(key)
        assert slru.victim() == 1  # oldest probationary

    def test_touch_promotes_to_protected(self):
        slru = SLRUPolicy(protected_capacity=2)
        for key in (1, 2, 3):
            slru.insert(key)
        slru.touch(1)  # promoted
        assert slru.victim() == 2  # 1 now protected

    def test_scan_resistance(self):
        """A one-pass scan of new keys never evicts the protected set."""
        slru = SLRUPolicy(protected_capacity=2)
        slru.insert(100)
        slru.insert(101)
        slru.touch(100)
        slru.touch(101)  # both protected
        for key in range(10):
            slru.insert(key)
            victim = slru.victim()
            assert victim not in (100, 101)
            slru.remove(victim)

    def test_protected_overflow_demotes(self):
        slru = SLRUPolicy(protected_capacity=1)
        slru.insert(1)
        slru.insert(2)
        slru.touch(1)  # protected = {1}
        slru.touch(2)  # protected full -> demotes 1 to probationary MRU
        assert len(slru) == 2
        # 1 is back in probation, so it's a victim candidate again;
        # but it is *MRU* of probation, so an older probationary key
        # would go first if present.
        slru.insert(3)
        assert slru.victim() == 1  # 1 (demoted) entered probation before 3

    def test_victims_fall_back_to_protected(self):
        slru = SLRUPolicy(protected_capacity=4)
        slru.insert(1)
        slru.touch(1)  # probation empty, 1 protected
        assert slru.victim() == 1

    def test_remove_from_either_segment(self):
        slru = SLRUPolicy(protected_capacity=2)
        slru.insert(1)
        slru.insert(2)
        slru.touch(1)
        slru.remove(1)  # protected
        slru.remove(2)  # probationary
        assert len(slru) == 0

    def test_touch_absent_rejected(self):
        with pytest.raises(CacheError):
            SLRUPolicy().touch(9)

    def test_duplicate_insert_rejected(self):
        slru = SLRUPolicy()
        slru.insert(1)
        with pytest.raises(CacheError):
            slru.insert(1)

    def test_iteration_covers_both_segments(self):
        slru = SLRUPolicy(protected_capacity=2)
        for key in (1, 2, 3):
            slru.insert(key)
        slru.touch(3)
        assert set(slru) == {1, 2, 3}

    def test_skip_filter(self):
        slru = SLRUPolicy(protected_capacity=2)
        for key in (1, 2):
            slru.insert(key)
        assert slru.victim(skip=lambda k: k == 1) == 2

    def test_works_inside_block_store(self):
        from repro.cache.store import BlockStore

        store = BlockStore(4, policy="slru:0.5")
        for block in range(4):
            store.put(block)
        store.get(3)  # protect
        victim = store.pop_victim()
        assert victim.block == 0


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("clock", ClockPolicy)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LRUPolicy)

    def test_slru_with_capacity(self):
        policy = make_policy("slru", capacity_blocks=100)
        assert isinstance(policy, SLRUPolicy)
        assert policy.protected_capacity == 80  # default 80% protected

    def test_slru_explicit_fraction(self):
        policy = make_policy("slru:0.25", capacity_blocks=100)
        assert policy.protected_capacity == 25

    def test_slru_bad_fraction(self):
        with pytest.raises(CacheError):
            make_policy("slru:1.5")
        with pytest.raises(CacheError):
            make_policy("slru:abc")

    def test_unknown_rejected(self):
        with pytest.raises(CacheError):
            make_policy("arc")

    def test_legacy_entry_point_warns_but_works(self):
        import repro.cache.policy as cache_policy

        with pytest.warns(DeprecationWarning):
            policy = cache_policy.make_policy("lru")
        assert isinstance(policy, LRUPolicy)


class TestVictimContract:
    """The EvictionPolicy.victim(skip) contract, exercised the same way
    across every unparameterized policy:

    * empty policy -> victim() is None, with or without a skip filter;
    * skip everything -> None (never an excluded key, never a crash);
    * skip some -> the victim is a tracked, non-skipped key;
    * no filter -> the victim is a tracked key;
    * remove(victim) always succeeds afterwards (the store's usage).
    """

    POLICIES = [LRUPolicy, FIFOPolicy, ClockPolicy]

    @pytest.mark.parametrize("cls", POLICIES)
    def test_empty_policy_returns_none(self, cls):
        policy = cls()
        assert policy.victim() is None
        assert policy.victim(skip=lambda k: False) is None
        assert policy.victim(skip=lambda k: True) is None

    @pytest.mark.parametrize("cls", POLICIES)
    def test_all_pinned_returns_none(self, cls):
        policy = cls()
        for key in range(8):
            policy.insert(key)
        assert policy.victim(skip=lambda k: True) is None
        # The scan must not disturb membership.
        assert sorted(policy) == list(range(8))

    @pytest.mark.parametrize("cls", POLICIES)
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_random_workload_respects_skip(self, cls, seed):
        rng = random.Random(seed)
        policy = cls()
        tracked = set()
        for step in range(400):
            action = rng.random()
            if action < 0.45 or not tracked:
                key = rng.randrange(64)
                if key not in tracked:
                    policy.insert(key)
                    tracked.add(key)
            elif action < 0.65:
                policy.touch(rng.choice(sorted(tracked)))
            elif action < 0.8:
                key = rng.choice(sorted(tracked))
                policy.remove(key)
                tracked.discard(key)
            else:
                pinned = {k for k in tracked if rng.random() < 0.5}
                victim = policy.victim(skip=lambda k: k in pinned)
                if pinned == tracked:
                    assert victim is None
                else:
                    assert victim in tracked - pinned
                    policy.remove(victim)
                    tracked.discard(victim)
            assert len(policy) == len(tracked)
        assert set(policy) == tracked


class TestRefLedgerEvictionInterplay:
    """The probationary admission ledger must track store membership:
    eviction resets a block's reference count, so a block that cycles
    out of RAM starts probation from scratch when it returns."""

    def _store(self, capacity=4):
        from repro.cache.store import BlockStore

        store = BlockStore(capacity, policy="lru")
        store.enable_ref_ledger()
        return store

    def test_touches_count_refs(self):
        store = self._store()
        store.put(1)
        assert store.ref_count(1) == 0
        store.get(1)
        store.get(1)
        assert store.ref_count(1) == 2

    def test_eviction_resets_refs(self):
        store = self._store(capacity=2)
        store.put(1)
        store.get(1)
        store.get(1)
        store.put(2)  # LRU order: 1 (older insert+touch), then 2 (MRU)
        assert store.ref_count(1) == 2
        victim = store.pop_victim()
        assert victim.block == 1
        assert store.ref_count(1) == 0
        # Re-inserting starts probation from scratch.
        store.put(1)
        assert store.ref_count(1) == 0

    def test_explicit_remove_resets_refs(self):
        store = self._store()
        store.put(5)
        store.get(5)
        assert store.ref_count(5) == 1
        store.remove(5)
        assert store.ref_count(5) == 0

    def test_ledger_disabled_reports_zero(self):
        from repro.cache.store import BlockStore

        store = BlockStore(4, policy="lru")
        store.put(1)
        store.get(1)
        assert store.ref_count(1) == 0

    def test_enable_is_idempotent(self):
        store = self._store()
        touch = store._touch
        store.enable_ref_ledger()
        assert store._touch is touch
