"""Tests for the foreign-trace importers."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.format import save_trace
from repro.traces.importers import (
    import_blkparse,
    import_blkparse_chunked,
    import_msr_csv,
    import_msr_csv_chunked,
    import_spc,
    import_spc_chunked,
    load_any,
    load_any_chunked,
)
from repro.traces.importers.base import StreamingTraceBuilder, TraceBuilder
from repro.traces.importers.detect import detect_format
from repro.traces.records import Trace, TraceOp, TraceRecord

MSR_SAMPLE = """\
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372016382155,usr,0,Write,2517696512,4096,73610
128166372026382245,src1,1,Read,1000,8192,11111
not,a,valid,line
128166372026382245,src1,1,Flush,1000,8192,11111
"""

BLKPARSE_SAMPLE = """\
  8,0    1        1     0.000000000  4510  Q   R 1953128 + 8 [fio]
  8,0    1        2     0.000123456  4510  C   R 1953128 + 8 [fio]
  8,0    2        3     0.000223456  4511  C   W 2048 + 16 [postgres]
  8,0    2        4     0.000323456  4511  C   N 0 + 0 [postgres]
garbage line that does not parse
  8,16   3        5     0.000423456  4512  C   R 4096 + 8 [fio]
"""

SPC_SAMPLE = """\
0,20941264,8192,W,0.000000
0,20939840,8192,W,0.026214
1,3436288,15872,r,0.112264
2,100,512,X,0.2
"""


@pytest.fixture
def msr_file(tmp_path):
    path = tmp_path / "msr.csv"
    path.write_text(MSR_SAMPLE)
    return path


@pytest.fixture
def blkparse_file(tmp_path):
    path = tmp_path / "trace.blkparse"
    path.write_text(BLKPARSE_SAMPLE)
    return path


@pytest.fixture
def spc_file(tmp_path):
    path = tmp_path / "trace.spc"
    path.write_text(SPC_SAMPLE)
    return path


class TestMsrImporter:
    def test_counts(self, msr_file):
        trace, stats = import_msr_csv(msr_file)
        assert stats.records_imported == 3
        assert stats.lines_skipped == 2  # bad line + Flush
        assert len(trace) == 3

    def test_ops_and_extents(self, msr_file):
        trace, _stats = import_msr_csv(msr_file)
        first = trace.records[0]
        assert first.op is TraceOp.READ
        assert first.offset == 7014609920 // 4096
        # 24576 bytes = 6 blocks, but the byte offset is unaligned, so
        # the extent touches 7 blocks.
        assert first.nblocks == 7

    def test_hosts_mapped(self, msr_file):
        trace, _stats = import_msr_csv(msr_file)
        assert trace.hosts() == [0, 1]  # usr, src1

    def test_single_host_fold(self, msr_file):
        trace, _stats = import_msr_csv(msr_file, single_host=True)
        assert trace.hosts() == [0]

    def test_warmup_fraction(self, msr_file):
        trace, _stats = import_msr_csv(msr_file, warmup_fraction=0.5)
        assert trace.warmup_records == 1  # floor(3 * 0.5)

    def test_geometry_covers_extents(self, msr_file):
        trace, _stats = import_msr_csv(msr_file)
        for record in trace.records:
            assert record.offset + record.nblocks <= trace.file_blocks[record.file_id]


class TestBlkparseImporter:
    def test_only_completions_kept(self, blkparse_file):
        trace, stats = import_blkparse(blkparse_file)
        assert len(trace) == 3  # the Q, N, and garbage lines are skipped
        assert stats.skip_reasons["other action"] == 1

    def test_sector_to_block_conversion(self, blkparse_file):
        trace, _stats = import_blkparse(blkparse_file)
        first = trace.records[0]
        # sector 1953128 * 512 bytes / 4096 = block 244141
        assert first.offset == 1953128 * 512 // 4096
        assert first.nblocks == 1  # 8 sectors = 4 KB

    def test_devices_become_files(self, blkparse_file):
        trace, _stats = import_blkparse(blkparse_file)
        assert len(trace.file_blocks) == 2  # 8,0 and 8,16

    def test_write_detection(self, blkparse_file):
        trace, _stats = import_blkparse(blkparse_file)
        assert [r.op.value for r in trace.records] == ["R", "W", "R"]

    def test_queue_events_selectable(self, blkparse_file):
        trace, _stats = import_blkparse(blkparse_file, action="Q")
        assert len(trace) == 1


class TestSpcImporter:
    def test_counts_and_ops(self, spc_file):
        trace, stats = import_spc(spc_file)
        assert len(trace) == 3
        assert stats.skip_reasons["unknown opcode 'X'"] == 1
        assert [r.op.value for r in trace.records] == ["W", "W", "R"]

    def test_asu_becomes_file_and_thread(self, spc_file):
        trace, _stats = import_spc(spc_file)
        assert len(trace.file_blocks) == 2  # ASU 0 and 1
        assert trace.records[2].file_id == 1

    def test_lba_is_sectors(self, spc_file):
        trace, _stats = import_spc(spc_file)
        assert trace.records[0].offset == 20941264 * 512 // 4096


class TestDetect:
    def test_detects_each_format(self, msr_file, blkparse_file, spc_file):
        assert detect_format(msr_file) == "msr"
        assert detect_format(blkparse_file) == "blkparse"
        assert detect_format(spc_file) == "spc"

    def test_detects_native(self, tmp_path):
        path = tmp_path / "native.trace"
        save_trace(Trace([TraceRecord(TraceOp.READ, 0, 0, 0, 0, 1)], [8]), path)
        assert detect_format(path) == "native"
        bin_path = tmp_path / "native.btrace"
        save_trace(Trace([], [8]), bin_path, binary=True)
        assert detect_format(bin_path) == "native"

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "mystery.txt"
        path.write_text("hello world\nthis is not a trace\n")
        with pytest.raises(TraceFormatError):
            detect_format(path)

    def test_load_any_round_trips(self, msr_file, spc_file):
        trace, stats = load_any(msr_file)
        assert len(trace) == 3
        assert stats is not None
        trace2, _ = load_any(spc_file)
        assert len(trace2) == 3

    def test_load_any_native_has_no_stats(self, tmp_path):
        path = tmp_path / "native.trace"
        save_trace(Trace([TraceRecord(TraceOp.READ, 0, 0, 0, 0, 1)], [8]), path)
        trace, stats = load_any(path)
        assert stats is None
        assert len(trace) == 1


class TestBuilder:
    def test_rejects_negative_extent(self):
        builder = TraceBuilder()
        assert not builder.add_bytes_extent(False, 0, 0, "d", -1, 4096)
        assert not builder.add_bytes_extent(False, 0, 0, "d", 0, 0)

    def test_partial_block_rounds_out(self):
        builder = TraceBuilder()
        builder.add_bytes_extent(False, 0, 0, "d", 100, 200)  # within block 0
        trace = builder.build()
        assert trace.records[0].offset == 0
        assert trace.records[0].nblocks == 1

    def test_extent_spanning_blocks(self):
        builder = TraceBuilder()
        builder.add_bytes_extent(False, 0, 0, "d", 4000, 200)  # crosses 4096
        trace = builder.build()
        assert trace.records[0].nblocks == 2

    def test_imported_trace_replays(self, tmp_path):
        """End to end: import a foreign trace and run the simulator."""
        from repro.core.simulator import run_simulation
        from tests.helpers import tiny_config

        path = tmp_path / "msr.csv"
        path.write_text(MSR_SAMPLE)
        trace, _stats = import_msr_csv(path, single_host=True)
        results = run_simulation(trace, tiny_config())
        assert results.read_latency.count + results.write_latency.count == sum(
            r.nblocks for r in trace.records
        )


class TestAccountingInvariant:
    """Every importer must satisfy ``records_imported + lines_skipped ==
    lines_total`` at build time; a parser that drops a line without
    accounting for it now raises instead of silently shrinking the
    trace."""

    def test_consistent_imports_pass(self, msr_file, blkparse_file, spc_file):
        for importer, path in (
            (import_msr_csv, msr_file),
            (import_blkparse, blkparse_file),
            (import_spc, spc_file),
        ):
            _trace, stats = importer(path)
            assert stats.lines_total > 0
            assert stats.records_imported + stats.lines_skipped == stats.lines_total

    def test_deliberate_drift_raises(self):
        builder = TraceBuilder()
        builder.stats.lines_total = 5  # parser claims 5 lines read...
        builder.add_bytes_extent(False, 0, 0, "d", 0, 4096)  # ...1 imported
        builder.stats.skip("bad")  # ...1 skipped; 3 unaccounted
        with pytest.raises(TraceFormatError, match="accounting drift"):
            builder.build()

    def test_streaming_builder_drift_raises(self):
        builder = StreamingTraceBuilder()
        builder.stats.lines_total = 3
        builder.add_bytes_extent(False, 0, 0, "d", 0, 4096)
        with pytest.raises(TraceFormatError, match="accounting drift"):
            builder.build()
        builder.abort()

    def test_direct_builder_use_unaffected(self):
        # TraceBuilder used programmatically (lines_total never set)
        # must keep working — the invariant only applies to line-fed
        # imports.
        builder = TraceBuilder()
        builder.add_bytes_extent(False, 0, 0, "d", 0, 4096)
        assert len(builder.build()) == 1


class TestChunkedImporters:
    """The streaming ``*_chunked`` importers must be record-for-record
    and stats-for-stats identical to the materialized ones — including
    on inputs that exercise the skip paths."""

    @pytest.mark.parametrize(
        "plain,chunked",
        [
            (import_msr_csv, import_msr_csv_chunked),
            (import_blkparse, import_blkparse_chunked),
            (import_spc, import_spc_chunked),
        ],
        ids=["msr", "blkparse", "spc"],
    )
    def test_parity_with_materialized(self, plain, chunked, msr_file,
                                      blkparse_file, spc_file):
        from repro.traces.compiled import compile_trace

        path = {
            import_msr_csv: msr_file,
            import_blkparse: blkparse_file,
            import_spc: spc_file,
        }[plain]
        trace, stats = plain(path, warmup_fraction=0.4)
        streamed, streamed_stats = chunked(path, warmup_fraction=0.4)
        try:
            assert streamed.fingerprint == compile_trace(trace).fingerprint
            rows = [
                (1 if r.is_write else 0, r.host, r.thread, r.file_id,
                 r.offset, r.nblocks)
                for r in trace.records
            ]
            assert rows == list(streamed.iter_records())
            assert streamed.warmup_records == trace.warmup_records
            assert streamed.file_blocks == trace.file_blocks
            assert streamed_stats.records_imported == stats.records_imported
            assert streamed_stats.lines_skipped == stats.lines_skipped
            assert streamed_stats.lines_total == stats.lines_total
            assert stats.lines_skipped > 0  # skip paths exercised
        finally:
            streamed.delete()

    def test_chunked_import_replays(self, msr_file):
        from repro.core.simulator import run_simulation
        from repro.validation.differential import full_signature
        from tests.helpers import tiny_config

        trace, _ = import_msr_csv(msr_file, single_host=True)
        streamed, _ = import_msr_csv_chunked(msr_file, single_host=True)
        try:
            assert full_signature(
                run_simulation(trace, tiny_config())
            ) == full_signature(run_simulation(streamed, tiny_config()))
        finally:
            streamed.delete()

    def test_explicit_spool_dir(self, msr_file, tmp_path):
        spool = tmp_path / "spool"
        streamed, _ = import_msr_csv_chunked(msr_file, spool_dir=spool)
        assert spool.is_dir()
        streamed.close()
        # Explicit spools are owned by the caller: close() keeps them.
        assert (spool / "manifest.json").exists()

    def test_load_any_chunked_foreign_and_native(self, msr_file, tmp_path):
        from repro.traces.compiled import compile_trace

        streamed, stats = load_any_chunked(msr_file)
        trace, _ = load_any(msr_file)
        try:
            assert stats is not None
            assert streamed.fingerprint == compile_trace(trace).fingerprint
        finally:
            streamed.delete()
        native = tmp_path / "native.trace"
        save_trace(Trace([TraceRecord(TraceOp.READ, 0, 0, 0, 0, 1)], [8]), native)
        loaded, native_stats = load_any_chunked(native)
        assert native_stats is None
        assert len(loaded) == 1


class TestDetectStrictDecoding:
    """Regression tests for detect_format's decode handling: before the
    fix, a lenient errors="replace" decode let binary garbage
    masquerade as text and *mis*detect as a text trace format."""

    def test_binary_garbage_resembling_spc_raises(self, tmp_path):
        # Invalid UTF-8 bytes whose replacement-decoded text matches the
        # SPC line shape: pre-fix this "detected" as spc.
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"1,100,4096,r,0.1\xff\xfe\n" * 8)
        with pytest.raises(TraceFormatError, match="UTF-8"):
            detect_format(path)

    def test_binary_garbage_resembling_msr_raises(self, tmp_path):
        path = tmp_path / "garbage.csv"
        path.write_bytes(b"128166372003061629,usr\x80,0,Read,7014609920,24576\n" * 8)
        with pytest.raises(TraceFormatError, match="UTF-8"):
            detect_format(path)

    def test_utf8_split_at_window_boundary_still_detects(self, tmp_path):
        # 4096-byte sniff window splitting a multi-byte character must
        # not reject an otherwise valid file.
        line = "0,20941264,8192,W,0.000000\n"
        body = line * ((4094 // len(line)) + 1)
        payload = body.encode("utf-8")[: 4096 - 1] + "é".encode("utf-8")
        assert payload[:4096] != payload  # char straddles the boundary
        path = tmp_path / "boundary.spc"
        path.write_bytes(payload + b"\n" + line.encode("utf-8") * 4)
        assert detect_format(path) == "spc"

    def test_error_names_the_bad_offset(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"abc\xffdef")
        with pytest.raises(TraceFormatError, match="offset 3"):
            detect_format(path)


class TestMalformedHeaders:
    """A foreign trace whose first line is a stray header must still
    detect and import (the header is skipped, counted in stats)."""

    def test_msr_with_header_line(self, tmp_path):
        body = "\n".join(
            line for line in MSR_SAMPLE.splitlines()
            if line.split(",")[3].strip().lower() in ("read", "write")
        )
        path = tmp_path / "hdr.csv"
        path.write_text("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
                        + body + "\n")
        assert detect_format(path) == "msr"
        trace, stats = load_any(path)
        assert len(trace) == 3
        assert stats.lines_skipped >= 1

    def test_blkparse_with_header_line(self, tmp_path):
        path = tmp_path / "hdr.blkparse"
        path.write_text("# blktrace output for sda, CPU 0\n" + BLKPARSE_SAMPLE)
        assert detect_format(path) == "blkparse"
        trace, stats = load_any(path)
        assert len(trace) == 3

    def test_spc_with_header_line(self, tmp_path):
        path = tmp_path / "hdr.spc"
        path.write_text("ASU,LBA,Size,Opcode,Timestamp\n" + SPC_SAMPLE)
        assert detect_format(path) == "spc"
        trace, stats = load_any(path)
        assert len(trace) == 3
