"""Tests for trace records and the Trace container."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.records import Trace, TraceOp, TraceRecord


def record(op="R", host=0, thread=0, file_id=0, offset=0, nblocks=1):
    return TraceRecord(TraceOp(op), host, thread, file_id, offset, nblocks)


class TestTraceRecord:
    def test_is_write(self):
        assert record("W").is_write
        assert not record("R").is_write

    def test_nbytes(self):
        assert record(nblocks=3).nbytes == 3 * 4096

    def test_zero_blocks_rejected(self):
        with pytest.raises(TraceFormatError):
            record(nblocks=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(TraceOp.READ, -1, 0, 0, 0, 1)

    def test_equality(self):
        assert record() == record()
        assert record() != record(offset=1)


class TestTraceGeometry:
    def test_global_block_flattening(self):
        trace = Trace([], [10, 20, 30])
        assert trace.global_block(0, 5) == 5
        assert trace.global_block(1, 0) == 10
        assert trace.global_block(2, 7) == 37
        assert trace.total_file_blocks == 60

    def test_record_blocks_range(self):
        trace = Trace([record(file_id=1, offset=2, nblocks=3)], [10, 20])
        blocks = trace.record_blocks(trace.records[0])
        assert list(blocks) == [12, 13, 14]

    def test_file_overrun_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace([record(offset=8, nblocks=5)], [10])

    def test_unknown_file_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace([record(file_id=3)], [10])


class TestTraceStructure:
    def test_hosts_and_threads(self):
        trace = Trace(
            [
                record(host=0, thread=0),
                record(host=1, thread=2),
                record(host=1, thread=0),
            ],
            [10],
        )
        assert trace.hosts() == [0, 1]
        assert trace.threads_of(1) == [0, 2]

    def test_split_by_issuer_keeps_order_and_indices(self):
        records = [
            record(host=0, thread=0, offset=0),
            record(host=0, thread=1, offset=1),
            record(host=0, thread=0, offset=2),
        ]
        trace = Trace(records, [10])
        groups = trace.split_by_issuer()
        assert set(groups) == {(0, 0), (0, 1)}
        indices = [index for index, _rec in groups[(0, 0)]]
        assert indices == [0, 2]

    def test_warmup_bounds_validated(self):
        with pytest.raises(TraceFormatError):
            Trace([record()], [10], warmup_records=2)

    def test_without_warmup_drops_prefix(self):
        records = [record(offset=i) for i in range(4)]
        trace = Trace(records, [10], warmup_records=2)
        cold = trace.without_warmup()
        assert len(cold) == 2
        assert cold.warmup_records == 0
        assert cold.records[0].offset == 2

    def test_total_bytes(self):
        trace = Trace([record(nblocks=2), record(nblocks=3)], [10])
        assert trace.total_bytes == 5 * 4096

    def test_iteration(self):
        trace = Trace([record(), record(offset=1)], [10])
        assert len(list(trace)) == 2
