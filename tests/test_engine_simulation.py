"""Tests for the discrete-event kernel."""

import pytest

from repro.engine.events import Completion
from repro.engine.simulation import Simulator, timeout
from repro.errors import SimulationError


class TestTimeAdvancement:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_single_timeout(self):
        sim = Simulator()
        times = []

        def proc():
            yield 500
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [500]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield 100
            yield 200
            yield 300

        sim.spawn(proc())
        assert sim.run() == 600

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield 0

        sim.spawn(proc())
        assert sim.run() == 0

    def test_interleaving_is_by_time(self):
        sim = Simulator()
        log = []

        def proc(tag, delays):
            for delay in delays:
                yield delay
                log.append((sim.now, tag))

        sim.spawn(proc("a", [100, 100, 100]))
        sim.spawn(proc("b", [150, 150]))
        sim.run()
        # At the t=300 tie, b resumes first: its event was scheduled at
        # t=150, before a's was at t=200 (ties break by schedule order).
        assert log == [(100, "a"), (150, "b"), (200, "a"), (300, "b"), (300, "a")]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield 100
            log.append(tag)

        sim.spawn(proc("first"))
        sim.spawn(proc("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until_leaves_future_events_queued(self):
        sim = Simulator()
        fired = []

        def proc():
            yield 1000
            fired.append(sim.now)

        sim.spawn(proc())
        sim.run(until=500)
        assert sim.now == 500
        assert fired == []
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1000]


class TestProcessComposition:
    def test_yield_from_subroutine(self):
        sim = Simulator()

        def inner():
            yield 50
            return "inner-result"

        def outer():
            value = yield from inner()
            yield 50
            return value

        result = sim.run_until_complete(outer())
        assert result == "inner-result"
        assert sim.now == 100

    def test_process_completion_joins(self):
        sim = Simulator()
        log = []

        def worker():
            yield 100
            return "w"

        def waiter(proc):
            value = yield proc.completion
            log.append((sim.now, value))

        worker_proc = sim.spawn(worker())
        sim.spawn(waiter(worker_proc))
        sim.run()
        assert log == [(100, "w")]

    def test_determinism_across_runs(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def proc(tag, delay):
                for _ in range(3):
                    yield delay
                    log.append((sim.now, tag))

            sim.spawn(proc("x", 70))
            sim.spawn(proc("y", 110))
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestErrors:
    def test_negative_timeout_raises_in_process(self):
        sim = Simulator()

        def proc():
            yield -1

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "not-a-command"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deadlock_detected_by_run_until_complete(self):
        sim = Simulator()
        never = Completion()

        def proc():
            yield never

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc())

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def proc():
            sim.run()
            yield 0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestTimeoutHelper:
    def test_timeout_fires_at_deadline(self):
        sim = Simulator()
        done = timeout(sim, 250)
        observed = []

        def waiter():
            when = yield done
            observed.append(when)

        sim.spawn(waiter())
        sim.run()
        assert observed == [250]
