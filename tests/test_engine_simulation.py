"""Tests for the discrete-event kernel."""

import pytest

from repro.engine.events import Completion
from repro.engine.simulation import Simulator, timeout
from repro.errors import SimulationError


class TestTimeAdvancement:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_single_timeout(self):
        sim = Simulator()
        times = []

        def proc():
            yield 500
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [500]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield 100
            yield 200
            yield 300

        sim.spawn(proc())
        assert sim.run() == 600

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield 0

        sim.spawn(proc())
        assert sim.run() == 0

    def test_interleaving_is_by_time(self):
        sim = Simulator()
        log = []

        def proc(tag, delays):
            for delay in delays:
                yield delay
                log.append((sim.now, tag))

        sim.spawn(proc("a", [100, 100, 100]))
        sim.spawn(proc("b", [150, 150]))
        sim.run()
        # At the t=300 tie, b resumes first: its event was scheduled at
        # t=150, before a's was at t=200 (ties break by schedule order).
        assert log == [(100, "a"), (150, "b"), (200, "a"), (300, "b"), (300, "a")]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield 100
            log.append(tag)

        sim.spawn(proc("first"))
        sim.spawn(proc("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until_leaves_future_events_queued(self):
        sim = Simulator()
        fired = []

        def proc():
            yield 1000
            fired.append(sim.now)

        sim.spawn(proc())
        sim.run(until=500)
        assert sim.now == 500
        assert fired == []
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1000]


class TestProcessComposition:
    def test_yield_from_subroutine(self):
        sim = Simulator()

        def inner():
            yield 50
            return "inner-result"

        def outer():
            value = yield from inner()
            yield 50
            return value

        result = sim.run_until_complete(outer())
        assert result == "inner-result"
        assert sim.now == 100

    def test_process_completion_joins(self):
        sim = Simulator()
        log = []

        def worker():
            yield 100
            return "w"

        def waiter(proc):
            value = yield proc.completion
            log.append((sim.now, value))

        worker_proc = sim.spawn(worker())
        sim.spawn(waiter(worker_proc))
        sim.run()
        assert log == [(100, "w")]

    def test_determinism_across_runs(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def proc(tag, delay):
                for _ in range(3):
                    yield delay
                    log.append((sim.now, tag))

            sim.spawn(proc("x", 70))
            sim.spawn(proc("y", 110))
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestErrors:
    def test_negative_timeout_raises_in_process(self):
        sim = Simulator()

        def proc():
            yield -1

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "not-a-command"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deadlock_detected_by_run_until_complete(self):
        sim = Simulator()
        never = Completion()

        def proc():
            yield never

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc())

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def proc():
            sim.run()
            yield 0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestThrowContinuation:
    """A process that catches the kernel's thrown error keeps running.

    Pre-fix, both run loops discarded the command returned by
    ``gen.throw(...)``: a catch-and-continue process was silently
    dropped — never rescheduled, never marked finished, invisible to
    the blocked-waiter drain check.
    """

    def test_catch_and_continue_after_bad_yield(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield "not-a-command"
            except SimulationError:
                log.append("caught")
            yield 100
            log.append(sim.now)
            return "done"

        process = sim.spawn(proc())
        sim.run()
        assert log == ["caught", 100]
        assert process.finished
        assert process.completion.value == "done"

    def test_catch_and_continue_after_negative_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield -5
            except SimulationError:
                log.append("caught")
            yield 70
            log.append(sim.now)

        process = sim.spawn(proc())
        sim.run()
        assert log == ["caught", 70]
        assert process.finished

    def test_catch_and_return_marks_finished(self):
        sim = Simulator()

        def proc():
            try:
                yield "bogus"
            except SimulationError:
                return "recovered"
            yield 1

        process = sim.spawn(proc())
        sim.run()
        assert process.finished
        assert process.completion.value == "recovered"

    def test_catch_and_continue_in_bounded_run(self):
        # The bounded run(until=) loop takes the non-inlined _step path;
        # it must handle the post-throw yield identically.
        sim = Simulator()
        log = []

        def proc():
            try:
                yield "bogus"
            except SimulationError:
                log.append("caught")
            yield 40
            log.append(sim.now)

        process = sim.spawn(proc())
        sim.run(until=1000)
        assert log == ["caught", 40]
        assert process.finished

    def test_catch_then_wait_on_completion(self):
        # Post-throw, the process may block on an unfired completion;
        # it must be wired into the waiter list like any other blocker.
        sim = Simulator()
        done = Completion()
        log = []

        def firer():
            yield 200
            done.fire("late")

        def proc():
            try:
                yield -1
            except SimulationError:
                pass
            value = yield done
            log.append((sim.now, value))

        sim.spawn(firer())
        sim.spawn(proc())
        sim.run()
        assert log == [(200, "late")]
        assert sim.blocked_processes == 0

    def test_uncaught_error_still_propagates(self):
        sim = Simulator()

        def proc():
            yield "bogus"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_double_fault_propagates(self):
        # Catching the first error and yielding another bad command
        # re-throws; an uncaught second error escapes run().
        sim = Simulator()

        def proc():
            try:
                yield "first"
            except SimulationError:
                yield "second"

        sim.spawn(proc())
        with pytest.raises(SimulationError, match="second"):
            sim.run()


class TestBoundedRunEquivalence:
    """run() and stepwise run(until=t_i) must replay identically."""

    @staticmethod
    def _program(sim, log):
        done = Completion()

        def firer():
            yield 130
            done.fire("fired")
            log.append((sim.now, "firer"))

        def chains(tag, delays):
            for delay in delays:
                yield delay
                log.append((sim.now, tag))

        def blocker():
            value = yield done
            log.append((sim.now, "blocker", value))
            yield 0
            log.append((sim.now, "blocker-zero"))

        def recoverer():
            try:
                yield "bogus"
            except SimulationError:
                log.append((sim.now, "recovered"))
            yield 45
            log.append((sim.now, "recoverer"))

        sim.spawn(firer())
        sim.spawn(chains("a", [10, 10, 10, 100, 5]))
        sim.spawn(chains("b", [65, 65, 65]))
        sim.spawn(blocker())
        sim.spawn(recoverer())

    def test_stepwise_matches_unbounded(self):
        sim_full = Simulator()
        log_full = []
        self._program(sim_full, log_full)
        end = sim_full.run()

        sim_step = Simulator()
        log_step = []
        self._program(sim_step, log_step)
        for horizon in range(0, end + 50, 7):
            sim_step.run(until=horizon)
        sim_step.run()

        assert log_step == log_full
        assert sim_step.now == sim_full.now
        assert sim_step.blocked_processes == sim_full.blocked_processes == 0
        assert sim_step.pending_events == sim_full.pending_events == 0

    def test_bounded_run_never_rewinds_time(self):
        # Pre-fix, run(until=t) with t < now *rewound* the clock when an
        # event remained queued beyond the horizon.
        sim = Simulator()

        def proc():
            yield 100
            yield 1000

        sim.spawn(proc())
        sim.run(until=500)
        assert sim.now == 500
        sim.run(until=200)
        assert sim.now == 500  # not rewound to 200
        sim.run()
        assert sim.now == 1100


class TestTimeoutHelper:
    def test_timeout_fires_at_deadline(self):
        sim = Simulator()
        done = timeout(sim, 250)
        observed = []

        def waiter():
            when = yield done
            observed.append(when)

        sim.spawn(waiter())
        sim.run()
        assert observed == [250]
