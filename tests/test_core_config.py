"""Tests for TimingModel and SimConfig."""

import pytest

from repro._units import GB, MB, US
from repro.core.architectures import Architecture
from repro.core.config import SimConfig, TimingModel
from repro.core.policies import WritebackPolicy
from repro.errors import ConfigError
from repro.flash.timing import FlashTiming


class TestArchitecture:
    def test_parse(self):
        assert Architecture.parse("Naive") is Architecture.NAIVE
        assert Architecture.parse("UNIFIED") is Architecture.UNIFIED

    def test_parse_unknown(self):
        with pytest.raises(ConfigError):
            Architecture.parse("hybrid")

    def test_subset_property(self):
        assert Architecture.NAIVE.ram_is_subset_of_flash
        assert Architecture.LOOKASIDE.ram_is_subset_of_flash
        assert not Architecture.UNIFIED.ram_is_subset_of_flash

    def test_integration_property(self):
        assert Architecture.UNIFIED.needs_integrated_management
        assert not Architecture.NAIVE.needs_integrated_management


class TestTimingModelTable1:
    """Pin every Table 1 value."""

    def test_ram(self):
        timing = TimingModel.paper_default()
        assert timing.ram_read_ns == 400
        assert timing.ram_write_ns == 400

    def test_flash(self):
        timing = TimingModel.paper_default()
        assert timing.flash.read_ns == 88 * US
        assert timing.flash.write_ns == 21 * US

    def test_network(self):
        timing = TimingModel.paper_default()
        assert timing.network.base_latency_ns == 8_200
        assert timing.network.per_bit_ns == 1.0

    def test_filer(self):
        timing = TimingModel.paper_default()
        assert timing.filer.fast_read_ns == 92 * US
        assert timing.filer.slow_read_ns == 7_952 * US
        assert timing.filer.write_ns == 92 * US
        assert timing.filer.fast_read_rate == 0.90

    def test_as_table_lists_all_ten_parameters(self):
        table = TimingModel.paper_default().as_table()
        assert len(table.splitlines()) == 10

    def test_with_flash(self):
        timing = TimingModel.paper_default().with_flash(FlashTiming(1, 2))
        assert timing.flash.read_ns == 1
        assert timing.ram_read_ns == 400

    def test_with_prefetch_rate(self):
        timing = TimingModel.paper_default().with_prefetch_rate(0.8)
        assert timing.filer.fast_read_rate == 0.8


class TestSimConfig:
    def test_baseline_sizes(self):
        config = SimConfig.baseline()
        assert config.ram_bytes == 8 * GB
        assert config.flash_bytes == 64 * GB
        assert config.architecture is Architecture.NAIVE
        assert config.ram_policy.label == "p1"
        assert config.flash_policy.label == "a"

    def test_baseline_scaled(self):
        config = SimConfig.baseline_scaled(1024)
        assert config.ram_bytes == 8 * MB
        assert config.flash_bytes == 64 * MB

    def test_baseline_scaled_validation(self):
        with pytest.raises(ConfigError):
            SimConfig.baseline_scaled(0)

    def test_block_geometry(self):
        config = SimConfig(ram_bytes=1 * MB, flash_bytes=8 * MB)
        assert config.ram_blocks == 256
        assert config.flash_blocks == 2048

    def test_no_flash(self):
        config = SimConfig(flash_bytes=0)
        assert not config.has_flash

    def test_no_ram(self):
        config = SimConfig(ram_bytes=0, flash_bytes=8 * MB)
        assert not config.has_ram

    def test_subset_architectures_need_flash_at_least_ram(self):
        with pytest.raises(ConfigError):
            SimConfig(ram_bytes=8 * MB, flash_bytes=1 * MB)

    def test_unified_allows_flash_smaller_than_ram(self):
        config = SimConfig(
            architecture=Architecture.UNIFIED, ram_bytes=8 * MB, flash_bytes=1 * MB
        )
        assert config.flash_blocks < config.ram_blocks

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(ram_bytes=-1)

    def test_with_helpers(self):
        config = SimConfig.baseline()
        assert config.with_architecture(Architecture.UNIFIED).architecture is Architecture.UNIFIED
        updated = config.with_policies(
            ram_writeback=WritebackPolicy.sync(),
            flash_writeback=WritebackPolicy.none(),
        )
        assert updated.ram_policy.label == "s"
        assert updated.flash_policy.label == "n"
        # The legacy positional form still works, with a warning.
        with pytest.warns(DeprecationWarning):
            legacy = config.with_policies(
                WritebackPolicy.sync(), WritebackPolicy.none()
            )
        assert legacy.ram_policy.label == "s"
        assert legacy.flash_policy.label == "n"
        resized = config.with_sizes(MB, 2 * MB)
        assert resized.ram_bytes == MB

    def test_describe_mentions_everything(self):
        text = SimConfig.baseline().describe()
        assert "naive" in text
        assert "8.0 GB" in text
        assert "p1" in text
