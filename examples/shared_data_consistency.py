#!/usr/bin/env python
"""Cache consistency with shared data across two hosts (§7.9).

Two compute servers share one working set through the same filer, each
with its own flash cache.  Every write by one host must invalidate the
other host's cached copy — and the bigger the cache, the more stale
copies there are to invalidate.  This example reproduces the paper's
worst-case measurement: invalidations as a fraction of block writes,
with and without flash, plus the read-latency cost of the refetches.

Run:  python examples/shared_data_consistency.py
"""

from repro import MB, SimConfig, run_simulation
from repro.fsmodel import ImpressionsConfig
from repro.tracegen import TraceGenConfig, generate_trace


def build_shared_workload(write_fraction: float):
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=96 * MB, max_file_bytes=4 * MB),
        working_set_bytes=6 * MB,
        n_hosts=2,
        shared_working_set=True,  # the paper's worst case
        write_fraction=write_fraction,
        seed=29,
    )
    return generate_trace(config)


def main() -> None:
    print("%9s | %21s | %21s" % ("", "no flash", "8 MB flash per host"))
    print("%9s | %10s %10s | %10s %10s"
          % ("writes", "inval %", "read us", "inval %", "read us"))
    print("-" * 60)
    for write_fraction in (0.1, 0.3, 0.5, 0.7):
        trace = build_shared_workload(write_fraction)
        row = ["%8.0f%%" % (100 * write_fraction)]
        for flash_bytes in (0, 8 * MB):
            config = SimConfig(ram_bytes=1 * MB, flash_bytes=flash_bytes)
            results = run_simulation(trace, config)
            row.append(
                "%10.1f %10.1f"
                % (100 * results.invalidation_fraction, results.read_latency_us)
            )
        print(" | ".join(row))
    print()
    print("The flash columns show the paper's consistency warning: large")
    print("client caches keep shared blocks alive, so far more writes hit")
    print("a remote copy and force an invalidation plus a later refetch.")


if __name__ == "__main__":
    main()
