#!/usr/bin/env python
"""Tour of the reproduction's extensions beyond the paper.

Four questions the paper raises but leaves open, answered on a small
workload:

1. §3.2 — does a smarter (migration/exclusive) placement beat the
   simple architectures?
2. §3.6 — would trickle or delayed writeback have mattered?
3. §7.8 — what does the recovery phase actually cost?
4. §8  — what does a non-free FTL do to the cache's writes?

Run:  python examples/extensions_tour.py
"""

from repro import MB, Architecture, RestartSpec, SimConfig, WritebackPolicy, run_simulation
from repro.fsmodel import ImpressionsConfig
from repro.tracegen import TraceGenConfig, generate_trace


def build_workload():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=96 * MB, max_file_bytes=4 * MB),
        working_set_bytes=10 * MB,  # slightly over the 8 MB flash
        seed=41,
    )
    return generate_trace(config)


def placement(trace) -> None:
    print("1) Placement (§3.2): naive vs unified vs exclusive (migration)")
    for architecture in (Architecture.NAIVE, Architecture.UNIFIED, Architecture.EXCLUSIVE):
        config = SimConfig(
            architecture=architecture, ram_bytes=1 * MB, flash_bytes=8 * MB
        )
        results = run_simulation(trace, config)
        print(
            "   %-10s read %6.1f us   write %5.1f us"
            % (architecture, results.read_latency_us, results.write_latency_us)
        )
    print()


def elaborate_policies(trace) -> None:
    print("2) Elaborate writeback policies (§3.6): all in one flat band?")
    for label in ("a", "p0.005", "t0.005", "d0.005"):
        config = SimConfig(
            ram_bytes=1 * MB,
            flash_bytes=8 * MB,
            ram_policy=WritebackPolicy.parse(label),
        )
        results = run_simulation(trace, config)
        print(
            "   ram=%-7s read %6.1f us   write %5.1f us"
            % (label, results.read_latency_us, results.write_latency_us)
        )
    print()


def recovery_cost(trace) -> None:
    print("3) Recovery (§7.8): crash vs recover, with a metadata scan")
    config = SimConfig(ram_bytes=1 * MB, flash_bytes=8 * MB, persistent_flash=True)
    cases = [
        ("volatile crash", RestartSpec.crash_volatile()),
        ("instant recovery", RestartSpec.instant_recovery()),
        ("scan 50us/block", RestartSpec.recover_persistent(50_000)),
    ]
    for name, spec in cases:
        results = run_simulation(trace, config, restart=spec)
        print("   %-17s read %6.1f us" % (name, results.read_latency_us))
    print()


def ftl_cost(trace) -> None:
    print("4) A non-free FTL (§8): write amplification under cache churn")
    base = SimConfig(ram_bytes=1 * MB, flash_bytes=8 * MB)
    for name, config in (
        ("free FTL (paper)", base),
        ("page-mapped FTL", base.with_overrides(ftl_model=True)),
    ):
        results = run_simulation(trace, config)
        amplification = results.flash_write_amplification or 1.0
        print(
            "   %-17s read %6.1f us   write %5.1f us   WA %.2f"
            % (name, results.read_latency_us, results.write_latency_us, amplification)
        )


def main() -> None:
    trace = build_workload()
    placement(trace)
    elaborate_policies(trace)
    recovery_cost(trace)
    ftl_cost(trace)


if __name__ == "__main__":
    main()
