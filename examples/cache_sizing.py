#!/usr/bin/env python
"""Cache sizing study: how much flash — and how little RAM — do you need?

Two of the paper's most actionable results, reproduced on a small
workload:

1. Flash sizing (§7.2/Figure 4): read latency vs. flash size for a
   fixed workload — the win is dramatic once the working set fits.
2. The tiny-RAM configuration (§7.5/Figure 6): with a big flash cache
   and asynchronous write-through, the RAM file cache can shrink to a
   write buffer, freeing memory for applications.

Run:  python examples/cache_sizing.py
"""

from repro import KB, MB, SimConfig, WritebackPolicy, run_simulation
from repro.fsmodel import ImpressionsConfig
from repro.tracegen import TraceGenConfig, generate_trace


def build_workload():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=96 * MB, max_file_bytes=4 * MB),
        working_set_bytes=8 * MB,
        seed=3,
    )
    return generate_trace(config)


def flash_sizing(trace) -> None:
    print("1) Read latency vs. flash cache size (1 MB RAM)")
    print("%12s %12s %12s" % ("flash", "read (us)", "flash hits"))
    for flash_mb in (0, 2, 4, 8, 16):
        config = SimConfig(ram_bytes=1 * MB, flash_bytes=flash_mb * MB)
        results = run_simulation(trace, config)
        hit_rate = results.hit_rate("flash")
        print(
            "%9d MB %12.1f %12s"
            % (
                flash_mb,
                results.read_latency_us,
                "-" if hit_rate is None else "%.0f%%" % (100 * hit_rate),
            )
        )
    print()


def ram_shrinking(trace) -> None:
    print("2) Shrinking RAM under a 16 MB flash (async write-through)")
    print("%12s %12s %12s" % ("RAM", "read (us)", "write (us)"))
    for ram_kb in (0, 4, 16, 64, 256, 1024):
        config = SimConfig(
            ram_bytes=ram_kb * KB,
            flash_bytes=16 * MB,
            ram_policy=WritebackPolicy.asynchronous(),
            flash_policy=WritebackPolicy.asynchronous(),
        )
        results = run_simulation(trace, config)
        print(
            "%9d KB %12.1f %12.1f"
            % (ram_kb, results.read_latency_us, results.write_latency_us)
        )
    print(
        "\nNote the knee: a few dozen KB of RAM already restores RAM-speed\n"
        "writes — the rest of memory can go to the application (§7.5)."
    )


def main() -> None:
    trace = build_workload()
    flash_sizing(trace)
    ram_shrinking(trace)


if __name__ == "__main__":
    main()
