#!/usr/bin/env python
"""Design-space sweep: architectures x writeback policies.

A miniature of the paper's Figure 2 study.  It answers the paper's two
headline design questions on a workload you can run over coffee:

* Does the writeback policy matter?  (No — unless it results in
  synchronous writes to the file server.)
* Which architecture wins?  (Unified reads slightly faster thanks to
  its larger effective capacity; naive/lookaside write at RAM speed.)

Run:  python examples/design_space_sweep.py
"""

from repro import MB, Architecture, SimConfig, WritebackPolicy, run_simulation
from repro.fsmodel import ImpressionsConfig
from repro.tracegen import TraceGenConfig, generate_trace


def build_workload():
    """A working set slightly too big for the flash (the interesting case)."""
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=96 * MB, max_file_bytes=4 * MB),
        working_set_bytes=10 * MB,
        write_fraction=0.30,
        seed=7,
    )
    return generate_trace(config)


def main() -> None:
    trace = build_workload()
    policies = [
        WritebackPolicy.sync(),
        WritebackPolicy.asynchronous(),
        WritebackPolicy.periodic(0.001),  # scaled-down "p1"
        WritebackPolicy.none(),
    ]

    print("%-10s %-6s %-6s %10s %10s" % ("arch", "ram", "flash", "read(us)", "write(us)"))
    print("-" * 48)
    for architecture in Architecture:
        for ram_policy in policies:
            for flash_policy in policies:
                config = SimConfig(
                    architecture=architecture,
                    ram_bytes=1 * MB,
                    flash_bytes=8 * MB,
                    ram_policy=ram_policy,
                    flash_policy=flash_policy,
                )
                results = run_simulation(trace, config)
                print(
                    "%-10s %-6s %-6s %10.1f %10.1f"
                    % (
                        architecture,
                        ram_policy,
                        flash_policy,
                        results.read_latency_us,
                        results.write_latency_us,
                    )
                )
        print("-" * 48)
    print(
        "\nLook for: tall write latencies only on the 's' rows (and the\n"
        "'n'/'n' corner), unified's lower reads, and ~flat everything else."
    )


if __name__ == "__main__":
    main()
