#!/usr/bin/env python
"""Persistence and crash recovery: what is a warm flash cache worth?

Reproduces §7.8 in miniature.  A persistent flash cache pays one extra
flash write per block (data + metadata) but survives a reboot; this
example shows that the write penalty is invisible to the application
while the cold-start penalty of *losing* the cache is large.

Run:  python examples/crash_recovery.py
"""

from repro import MB, SimConfig, run_simulation
from repro.fsmodel import ImpressionsConfig
from repro.tracegen import TraceGenConfig, generate_trace


def build_workload():
    config = TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=96 * MB, max_file_bytes=4 * MB),
        working_set_bytes=8 * MB,
        seed=13,
    )
    return generate_trace(config)


def main() -> None:
    trace = build_workload()
    base = SimConfig(ram_bytes=1 * MB, flash_bytes=8 * MB)
    persistent = base.with_overrides(persistent_flash=True)

    plain_warm = run_simulation(trace, base)
    persist_warm = run_simulation(trace, persistent)
    # Crashing at the start of the run: a non-persistent cache comes
    # back empty, so we replay only the measurement phase cold.
    crashed = run_simulation(trace, base, cold_start=True)

    print("volatile flash, warm:      read %6.1f us  write %5.1f us"
          % (plain_warm.read_latency_us, plain_warm.write_latency_us))
    print("persistent flash, warm:    read %6.1f us  write %5.1f us"
          % (persist_warm.read_latency_us, persist_warm.write_latency_us))
    print("volatile flash, crashed:   read %6.1f us  write %5.1f us"
          % (crashed.read_latency_us, crashed.write_latency_us))

    penalty = (persist_warm.read_latency_us / plain_warm.read_latency_us - 1) * 100
    crash_cost = (crashed.read_latency_us / persist_warm.read_latency_us - 1) * 100
    print()
    print("persistence overhead (doubled flash writes): %+.1f%% reads" % penalty)
    print("cost of losing the cache in a crash:         %+.1f%% reads" % crash_cost)
    print()
    print("Paper's conclusion (§7.8): the persistence overhead is invisible;")
    print("the benefit of recovering a warm cache is substantial.")


if __name__ == "__main__":
    main()
