#!/usr/bin/env python
"""Quickstart: generate a synthetic workload, simulate a client-side
flash cache, and compare it against a RAM-only client.

This is the paper's elevator pitch in ~40 lines: a compute server
("host") with 1 MB of RAM available for file caching gains a lot from
putting an 8 MB flash cache under it, because the alternative is the
networked file server — fast when its prefetcher wins, milliseconds
when it does not.

(Sizes here are megabytes rather than the paper's gigabytes purely so
the example runs in seconds; every latency constant is the paper's.)

Run:  python examples/quickstart.py
"""

from repro import MB, SimConfig, run_simulation
from repro.tracegen import TraceGenConfig, generate_trace


def main() -> None:
    # 1. A workload: an 8 MB working set over a 64 MB file server,
    #    eight application threads, 30% writes (the paper's baseline mix).
    trace = generate_trace(TraceGenConfig.small_example())
    print("workload: %d I/O records, %.1f MB of data\n" % (len(trace), trace.total_bytes / MB))

    # 2. A client with a flash cache (the paper's "naive" architecture:
    #    flash as an independent tier under the RAM cache).
    with_flash = SimConfig(ram_bytes=1 * MB, flash_bytes=8 * MB)
    flash_results = run_simulation(trace, with_flash)

    # 3. The same client without flash.
    ram_only = SimConfig(ram_bytes=1 * MB, flash_bytes=0)
    ram_results = run_simulation(trace, ram_only)

    # 4. Compare what the application sees.
    print("with 8 MB flash cache:")
    print(flash_results.summary())
    print()
    print("RAM only:")
    print(ram_results.summary())
    print()
    speedup = ram_results.read_latency_us / flash_results.read_latency_us
    print("flash cache read speedup: %.1fx" % speedup)


if __name__ == "__main__":
    main()
