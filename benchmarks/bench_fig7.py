"""Figure 7 — the small-RAM sweep on a RAM-sized (5 GB) workload.

Paper shape: when the whole working set would fit in the 8 GB RAM,
shrinking RAM to a write buffer costs a noticeable 25-30% on reads
(flash speed instead of RAM speed) — far less than the ~5x penalty of
having no flash at all.
"""

from repro.core.simulator import run_simulation
from repro.experiments import figure7
from repro.experiments.common import baseline_config, baseline_trace

from conftest import run_experiment


def test_figure7_ram_sized_workload(benchmark):
    result = run_experiment(benchmark, figure7.run)
    rows = [r for r in result.rows if r["ram_blocks"] > 0]
    smallest = rows[0]
    baseline = rows[-1]

    # Small RAM costs something on a RAM-sized workload...
    assert smallest["read_a_us"] > baseline["read_a_us"]
    # ... but it is a bounded penalty, not a collapse (paper: 25-30%;
    # we allow up to ~2.5x at scaled geometry where the 20% non-WS
    # traffic weighs more).
    assert smallest["read_a_us"] < 2.5 * baseline["read_a_us"]

    # And still far better than dropping the flash: the same tiny RAM
    # without flash pays the filer on almost every read.  (Same longer
    # trace figure7 itself uses for its 5 GB working set.)
    trace = baseline_trace(ws_gb=5.0, volume_multiple=32.0)
    tiny_ram = smallest["ram_blocks"] * 4096
    noflash = run_simulation(
        trace, baseline_config(flash_gb=0.0).with_sizes(tiny_ram, 0)
    )
    assert noflash.read_latency_us > 2.0 * smallest["read_a_us"]
