"""Figure 10 — the effect of flash cache persistence.

Paper shape: the doubled flash write latency of a persistent cache is
invisible to the application; losing the warm cache (cold start) is
expensive wherever the flash was doing work; both flash curves beat
no-flash.
"""

import pytest

from repro.experiments import figure10

from conftest import run_experiment


def test_figure10_persistence(benchmark):
    result = run_experiment(benchmark, figure10.run)

    for row in result.rows:
        # Warm flash beats cold flash wherever the cache matters (give
        # the tiny 5 GB point a pass: RAM alone covers it).
        if 20.0 <= row["ws_gb"] <= 320.0:
            assert row["flash_warm_us"] < row["flash_cold_us"]
        # Both beat no flash for cache-sized working sets.
        if 20.0 <= row["ws_gb"] <= 80.0:
            assert row["flash_warm_us"] < row["noflash_warm_us"]

    # The penalty of crashing (cold start) is largest where the WS fits
    # in flash.
    by_ws = {row["ws_gb"]: row for row in result.rows}
    fits = by_ws[60.0]
    assert fits["flash_cold_us"] > 1.3 * fits["flash_warm_us"]


def test_figure10_persistence_cost_is_invisible(benchmark):
    plain, persistent = benchmark.pedantic(
        figure10.persistence_cost, rounds=1, iterations=1
    )
    # Doubling the flash write latency does not reach the application:
    # writes land in RAM, and flash writes happen in the background.
    assert persistent.write_latency_us == pytest.approx(
        plain.write_latency_us, rel=0.05
    )
    assert persistent.read_latency_us == pytest.approx(
        plain.read_latency_us, rel=0.20
    )
