"""Extension bench: trickle and delayed writeback policies (§3.6).

Verifies the paper's extrapolation that "more elaborate policies"
would have performed identically to the simple asynchronous/periodic
ones — i.e. everything but synchronous-to-filer lands in one flat band.
"""

from repro.experiments import extended_policies

from conftest import run_experiment


def test_extended_policies_match_the_flat_band(benchmark):
    result = run_experiment(benchmark, extended_policies.run)
    by_policy = {row["ram_policy"]: row for row in result.rows}

    flat_band = [
        row
        for label, row in by_policy.items()
        if label[0] in ("a", "p", "t", "d")
    ]
    assert len(flat_band) >= 4

    # Writes: the whole band is at RAM speed.
    for row in flat_band:
        assert row["write_us"] < 2.0, "%s should write at RAM speed" % row["ram_policy"]

    # Reads: the band is flat (within noise of each other).
    reads = [row["read_us"] for row in flat_band]
    assert max(reads) < 1.25 * min(reads)

    # The synchronous policy stands out exactly as in Figure 2.
    assert by_policy["s"]["write_us"] > 10 * max(r["write_us"] for r in flat_band)
