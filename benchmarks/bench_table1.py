"""Table 1 — Timing Model Parameters (rendered from the defaults)."""

from repro.experiments import table1

from conftest import run_experiment


def test_table1_timing_model(benchmark):
    result = run_experiment(benchmark, table1.run)
    values = {row["parameter"]: row["value"] for row in result.rows}
    assert values["RAM read"] == "400 ns / 4K block"
    assert values["Flash read"] == "88.0 us / 4K block"
    assert values["Flash write"] == "21.0 us / 4K block"
    assert values["Network base latency"] == "8.2 us / packet"
    assert values["File server slow read"] == "7952.0 us / 4K block"
    assert values["File server fast read rate"] == "90%"
