#!/usr/bin/env python
"""Bounded-memory streaming-pipeline smoke benchmark (CI gate).

Proves the three ROADMAP-item-3 properties the streaming trace pipeline
claims, with hard exits rather than advisory prints:

1. **Bounded memory.**  A ~1M-record synthetic trace is generated
   *directly into* a chunked spool (no ``TraceRecord`` objects, no
   materialized columns) and replayed through the simulator, all under
   ``tracemalloc``; the Python-heap peak must stay under
   ``--budget-mb``.  The budget is far below what the materialized
   pipeline needs for the same record count (~120 bytes/record of
   ``TraceRecord`` objects alone), so a silent fallback to
   materialization fails the gate.  Peak RSS is reported alongside for
   context (it includes interpreter overhead and is not gated).

2. **Identical content.**  At a smaller record count, the chunked
   generator must produce a spool whose fingerprint equals
   ``compile_trace(generate_trace(cfg))`` and whose replay
   ``result_signature`` matches the materialized replay bit for bit.

3. **Importer parity on messy input.**  Fixture files for all three
   foreign formats — each containing skippable garbage lines — must
   import record-for-record identically through the materialized and
   streaming builders, with identical skip accounting.

Usage::

    PYTHONPATH=src python benchmarks/stream_smoke.py                  # full gate
    PYTHONPATH=src python benchmarks/stream_smoke.py --records 200000 # quicker
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._units import MB, BLOCK_SIZE  # noqa: E402
from repro.core.config import SimConfig  # noqa: E402
from repro.core.simulator import run_simulation  # noqa: E402
from repro.fsmodel.impressions import ImpressionsConfig  # noqa: E402
from repro.tracegen import (  # noqa: E402
    TraceGenConfig,
    generate_trace,
    generate_trace_chunked,
)
from repro.traces.compiled import compile_trace  # noqa: E402
from repro.validation.differential import result_signature  # noqa: E402

#: tracemalloc peak budget for the ~1M-record streamed generate+replay.
DEFAULT_BUDGET_MB = 64

#: Record count of the bounded-memory phase (approximate: tracegen
#: stops when the target volume is reached, not at an exact count).
DEFAULT_RECORDS = 1_000_000

# Messy importer fixtures: every format carries deliberate skip lines
# (comments, short lines, unknown opcodes, non-numeric fields) so the
# parity check also covers each parser's skip paths.
MSR_FIXTURE = """\
128166372003061629,hm,0,Read,383496192,32768,58000
# header-ish comment line
128166372016382155,hm,0,Write,310378496,16384,47000
128166372026382245,web,1,Read,660830720,4096,33000
tooshort,line
128166372036382245,web,1,write,12288,8192,21000
128166372046382245,hm,0,Flush,0,4096,11000
128166372056382245,hm,0,Read,notanumber,4096,11000
"""

SPC_FIXTURE = """\
0,20941264,8192,W,0.0
0,20939840,8192,R,0.11

1,3072,1024,R,0.2
2,4096,8192,W,0.3
2,4096,1024,X,0.35
1,bogus,1024,R,0.4
"""

BLKPARSE_FIXTURE = """\
  8,0    1        1     0.000000000  1234  C   R 1000 + 8 [prog]
  8,0    1        2     0.000100000  1234  C   W 2048 + 16 [prog]
not a blkparse line at all
  8,0    3        3     0.000200000  5678  C   R 512 + 4 [other]
  8,0    1        4     0.000300000  1234  Q   R 1000 + 8 [prog]
  8,0    1        5     0.000400000  1234  C  RM 4096 + 8 [prog]
"""


def _gen_config(records: int) -> TraceGenConfig:
    """A generator config producing approximately ``records`` records.

    The working set is *fixed* (128 MB) and only ``volume_multiple``
    scales with the record target: distinct-block state — the working
    set model, cache contents, per-block counters — is then constant,
    so any memory growth with ``--records`` is attributable to the
    trace pipeline itself, which is exactly what the gate must bound.
    """
    io_mean = 4.0
    ws_bytes = 128 * MB
    ws_blocks = ws_bytes // BLOCK_SIZE
    volume_multiple = max(0.5, records * io_mean / ws_blocks)
    return TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=8 * ws_bytes),
        working_set_bytes=ws_bytes,
        n_hosts=1,
        threads_per_host=8,
        io_mean_blocks=io_mean,
        volume_multiple=volume_multiple,
        seed=42,
    )


def _sim_config() -> SimConfig:
    """A small fixed-cache config: simulator state stays O(cache), so
    the memory gate isolates the *trace pipeline's* footprint."""
    return SimConfig(ram_bytes=64 * MB, flash_bytes=256 * MB)


def phase_bounded_memory(
    records: int, budget_mb: int, chunk_records: Optional[int]
) -> Dict:
    """Generate-into-spool + streamed replay under a tracemalloc budget."""
    config = _gen_config(records)
    tracemalloc.start()
    started = time.perf_counter()
    trace = generate_trace_chunked(config, chunk_records=chunk_records)
    generated = time.perf_counter()
    try:
        result = run_simulation(trace, _sim_config())
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        spool_bytes = sum(
            (trace.spool_dir / name).stat().st_size
            for name in os.listdir(trace.spool_dir)
        )
        trace.delete()
    replayed = time.perf_counter()
    rss_kb = 0
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # pragma: no cover - non-POSIX
        pass
    peak_mb = peak / MB
    return {
        "records": len(trace),
        "blocks_replayed": result.blocks_read + result.blocks_written,
        "generate_wall_s": round(generated - started, 3),
        "replay_wall_s": round(replayed - generated, 3),
        "spool_mb": round(spool_bytes / MB, 2),
        "tracemalloc_peak_mb": round(peak_mb, 2),
        "budget_mb": budget_mb,
        "rss_peak_mb": round(rss_kb / 1024.0, 1),
        "within_budget": peak_mb <= budget_mb,
    }


def phase_content_identity(chunk_records: Optional[int]) -> Dict:
    """Small-N: chunked generation must equal materialized generation."""
    config = _gen_config(20_000)
    materialized = generate_trace(config)
    compiled = compile_trace(materialized)
    chunked = generate_trace_chunked(config, chunk_records=chunk_records or 4096)
    try:
        fingerprints_equal = compiled.fingerprint == chunked.fingerprint
        sim = _sim_config()
        signatures_equal = result_signature(
            run_simulation(compiled, sim)
        ) == result_signature(run_simulation(chunked, sim))
    finally:
        chunked.delete()
    return {
        "records": len(materialized),
        "fingerprints_equal": fingerprints_equal,
        "signatures_equal": signatures_equal,
    }


def phase_importer_parity() -> Dict:
    """Messy-fixture parity: streaming importers == materialized ones."""
    from repro.traces.importers import (
        import_blkparse,
        import_blkparse_chunked,
        import_msr_csv,
        import_msr_csv_chunked,
        import_spc,
        import_spc_chunked,
    )

    fixtures = (
        ("msr.csv", MSR_FIXTURE, import_msr_csv, import_msr_csv_chunked),
        ("spc.txt", SPC_FIXTURE, import_spc, import_spc_chunked),
        ("trace.blkparse", BLKPARSE_FIXTURE, import_blkparse, import_blkparse_chunked),
    )
    formats: Dict[str, Dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-stream-smoke-") as tmp:
        for name, text, plain, chunked_importer in fixtures:
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            trace, stats = plain(path, warmup_fraction=0.25)
            chunked, chunked_stats = chunked_importer(path, warmup_fraction=0.25)
            try:
                rows = [
                    (
                        1 if record.is_write else 0,
                        record.host,
                        record.thread,
                        record.file_id,
                        record.offset,
                        record.nblocks,
                    )
                    for record in trace.records
                ]
                formats[name] = {
                    "records": stats.records_imported,
                    "skipped": stats.lines_skipped,
                    "records_equal": rows == list(chunked.iter_records()),
                    "fingerprints_equal": compile_trace(trace).fingerprint
                    == chunked.fingerprint,
                    "stats_equal": (
                        stats.records_imported == chunked_stats.records_imported
                        and stats.lines_skipped == chunked_stats.lines_skipped
                        and stats.lines_total == chunked_stats.lines_total
                    ),
                    "skip_paths_exercised": stats.lines_skipped > 0,
                }
            finally:
                chunked.delete()
    return formats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/stream_smoke.py",
        description="Bounded-memory streaming trace pipeline gate.",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=DEFAULT_RECORDS,
        help="approximate record count of the bounded-memory phase",
    )
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=DEFAULT_BUDGET_MB,
        help="tracemalloc peak budget for streamed generate+replay",
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        help="chunk size override (default: REPRO_TRACE_CHUNK_RECORDS or %d)"
        % 65536,
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the phase report as JSON to FILE",
    )
    args = parser.parse_args(argv)

    report = {
        "bounded_memory": phase_bounded_memory(
            args.records, args.budget_mb, args.chunk_records
        ),
        "content_identity": phase_content_identity(args.chunk_records),
        "importer_parity": phase_importer_parity(),
    }
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    bounded = report["bounded_memory"]
    print(
        "bounded-memory: %d records, spool %.1f MB, peak heap %.1f MB "
        "(budget %d MB), rss %.0f MB, gen %.1fs replay %.1fs"
        % (
            bounded["records"],
            bounded["spool_mb"],
            bounded["tracemalloc_peak_mb"],
            bounded["budget_mb"],
            bounded["rss_peak_mb"],
            bounded["generate_wall_s"],
            bounded["replay_wall_s"],
        )
    )
    identity = report["content_identity"]
    print(
        "content-identity: %d records, fingerprints %s, signatures %s"
        % (
            identity["records"],
            "equal" if identity["fingerprints_equal"] else "DIFFER",
            "equal" if identity["signatures_equal"] else "DIFFER",
        )
    )
    problems: List[str] = []
    if not bounded["within_budget"]:
        problems.append(
            "streamed pipeline peaked at %.1f MB > budget %d MB"
            % (bounded["tracemalloc_peak_mb"], bounded["budget_mb"])
        )
    if not identity["fingerprints_equal"]:
        problems.append("chunked generation fingerprint drifted")
    if not identity["signatures_equal"]:
        problems.append("chunked replay signature drifted")
    for name, row in report["importer_parity"].items():
        status = all(
            row[key]
            for key in (
                "records_equal",
                "fingerprints_equal",
                "stats_equal",
                "skip_paths_exercised",
            )
        )
        print(
            "importer-parity: %-15s %d records, %d skipped — %s"
            % (name, row["records"], row["skipped"], "OK" if status else "FAIL")
        )
        if not status:
            problems.append("importer parity failed for %s: %r" % (name, row))
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem)
        return 1
    print("stream smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
