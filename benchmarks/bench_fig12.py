"""Figure 12 — invalidations and read latency vs. working-set size
(two hosts sharing one working set, 30% writes).

Paper shape: invalidation percentage high while the working set fits in
flash; it drops off beyond the cache, but more slowly and less deeply
than the no-flash (RAM-only) rate, because the big flash keeps remote
copies alive far longer.
"""

from repro.experiments import figure12

from conftest import run_experiment


def test_figure12_invalidations_vs_ws_size(benchmark):
    result = run_experiment(benchmark, figure12.run)
    by_ws = {row["ws_gb"]: row for row in result.rows}

    # The flash cache at least matches RAM-only invalidations for every
    # working set beyond RAM size (below it, both caches retain the
    # whole set and the rates coincide up to sampling noise).
    for row in result.rows:
        if row["ws_gb"] > 8.0:
            assert row["inval_flash_pct"] >= row["inval_noflash_pct"] * 0.9

    # In-flash working sets: invalidation percentage is high.
    fits = by_ws[60.0]
    assert fits["inval_flash_pct"] > 10.0

    # Out-of-cache working sets: the no-flash rate has decayed far more
    # than the flash rate (the paper's "neither as quickly nor as
    # significantly" finding).
    huge = by_ws[320.0]
    assert huge["inval_flash_pct"] > huge["inval_noflash_pct"]

    # Read latency benefits from flash despite the invalidations.
    assert fits["read_flash_us"] < fits["read_noflash_us"]
