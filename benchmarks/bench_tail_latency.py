"""Extension bench: tail latency vs. flash size.

The paper's mean-latency lens hides that a client cache fixes the mean
long before it fixes the tail: p99 stays at the slow-filer-read level
until the miss rate drops below ~1 %.
"""

from repro.experiments import tail_latency

from conftest import run_experiment


def test_tail_latency(benchmark):
    result = run_experiment(benchmark, tail_latency.run)
    by_size = {row["flash_gb"]: row for row in result.rows}

    # The mean improves monotonically (within noise) with flash size.
    means = [row["mean_us"] for row in result.rows]
    for earlier, later in zip(means, means[1:]):
        assert later <= earlier * 1.05

    # The median drops to cache speed once the flash absorbs most reads.
    assert by_size[64.0]["p50_us"] <= by_size[0.0]["p50_us"]

    # The tail is stubborn: even at 84% flash hits, p99 is still set by
    # slow filer reads (the >1% miss stream keeps feeding it).
    assert by_size[64.0]["p99_us"] > 20 * by_size[64.0]["p50_us"]
    assert by_size[64.0]["p99_us"] >= by_size[0.0]["p99_us"] * 0.5

    # Sanity: the big-cache mean beats no-flash by ~3x (Figure 4's win),
    # while p99 moved far less — the headline of this extension.
    mean_win = by_size[0.0]["mean_us"] / by_size[64.0]["mean_us"]
    p99_win = by_size[0.0]["p99_us"] / max(by_size[64.0]["p99_us"], 1e-9)
    assert mean_win > 2.0
    assert p99_win < mean_win
