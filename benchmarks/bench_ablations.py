"""Ablation benchmarks for design choices the paper fixes.

Not paper figures — these quantify the sensitivity of the paper's
conclusions to its fixed knobs: LRU replacement, the latency-server
flash model, and the free FTL (DESIGN.md §7).
"""

from repro.experiments import ablations

from conftest import run_experiment


def test_ablation_eviction_policy(benchmark):
    result = run_experiment(benchmark, ablations.eviction_policy)
    by_policy = {row["policy"]: row for row in result.rows}

    # CLOCK approximates LRU closely on this workload.
    assert by_policy["clock"]["read60_us"] < 1.25 * by_policy["lru"]["read60_us"]

    # No policy changes the paper's conclusions: flash still provides a
    # high hit rate under every policy.
    for row in result.rows:
        assert row["flash_hit60"] > 0.5


def test_ablation_flash_parallelism(benchmark):
    result = run_experiment(benchmark, ablations.flash_parallelism)
    by_level = {row["parallelism"]: row for row in result.rows}

    # Bounded parallelism can only slow things down.
    assert by_level["1"]["read_us"] >= by_level["unlimited"]["read_us"] * 0.95

    # Eight channels (matching the eight threads) is close to unlimited.
    assert by_level["8"]["read_us"] < 1.15 * by_level["unlimited"]["read_us"]


def test_ablation_ftl_cost(benchmark):
    result = run_experiment(benchmark, ablations.ftl_cost)
    free = next(r for r in result.rows if r["ftl"].startswith("free"))
    modeled = [r for r in result.rows if not r["ftl"].startswith("free")]

    # The free-FTL assumption reports WA exactly 1.
    assert free["write_amplification"] == 1.0

    for row in modeled:
        # GC is real but bounded on a TRIM-friendly cache workload.
        assert 1.0 <= row["write_amplification"] < 4.0
        # The application barely notices: flash writes are off the
        # critical path under the baseline policies.
        assert row["write_us"] < 4.0 * max(free["write_us"], 0.5)
        # ... and reads shift only mildly (GC time steals device time).
        assert row["read_us"] < 1.3 * free["read_us"]

    # More overprovisioning lowers write amplification.
    was = [r["write_amplification"] for r in modeled]
    assert was == sorted(was, reverse=True)
