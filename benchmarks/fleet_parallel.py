#!/usr/bin/env python
"""Fleet-scale parallel-replay benchmark and identity gate.

Replays one pinned-seed multi-tenant fleet trace twice — serially and
with ``run_simulation(parallel_hosts=N)`` sharding host groups across
the worker pool (:mod:`repro.engine.parallel`) — and records both wall
times into a new additive ``parallel`` section of
``BENCH_replay.json`` (the section is not part of the file's required
schema, so older files stay valid).

Two properties are *gates* (exit 3 on failure), because they hold on
any hardware:

* the parallel engine must actually engage (``last_outcome()`` reports
  a sharded replay, not a silent serial fallback); and
* the merged results must be **bit-identical** to the serial replay,
  down to latency histogram buckets and per-host rows.

The measured ``speedup`` is recorded alongside the partition's
structural bound ``ideal_speedup`` (total rows over the largest
group's rows — what perfect scheduling could achieve).  Wall-clock
speedup is only *enforced* (>= 2x) when the host has at least as many
CPUs as the run uses workers; a single-core container can execute the
sharded replay correctly but cannot make it faster.

Usage::

    PYTHONPATH=src python benchmarks/fleet_parallel.py           # 1000-host fleet
    PYTHONPATH=src python benchmarks/fleet_parallel.py --fast    # CI smoke
    PYTHONPATH=src python benchmarks/fleet_parallel.py --check BENCH_replay.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._units import MB  # noqa: E402
from repro.core.policies import WritebackPolicy  # noqa: E402
from repro.core.simulator import run_simulation  # noqa: E402
from repro.engine import parallel as parallel_engine  # noqa: E402
from repro.experiments.common import DEFAULT_SCALE, baseline_config  # noqa: E402
from repro.filer.timing import FilerTiming  # noqa: E402
from repro.sweep import shutdown_pool  # noqa: E402
from repro.tracegen.fleet import FleetSpec, fleet_trace  # noqa: E402
from repro.traces.compiled import compile_trace  # noqa: E402
from repro.traces.partition import analyze_partition, plan_groups  # noqa: E402
from repro.validation.differential import full_signature  # noqa: E402

#: Workers the sharded replay uses (the ISSUE's 8-worker target).
WORKERS = 8

#: Pinned fleet geometry.  ``fast`` shrinks hosts and volume for CI;
#: both are warmup-free (a parallel-eligibility condition) and split
#: into 8 disjoint tenants, so the independent tier shards them.
_FULL_SPEC = dict(
    n_hosts=1000, n_tenants=8, warmup_fraction=0.0, ws_bytes=96 * MB,
    volume_multiple=6.0,
)
_FAST_SPEC = dict(
    n_hosts=64, n_tenants=8, warmup_fraction=0.0, ws_bytes=8 * MB,
    volume_multiple=4.0,
)

#: Keys the ``--check`` mode requires in the ``parallel`` section.
_PARALLEL_KEYS = {
    "n_hosts": int,
    "records": int,
    "workers": int,
    "groups": int,
    "serial_wall_s": float,
    "parallel_wall_s": float,
    "speedup": float,
    "ideal_speedup": float,
    "cpus": int,
    "engaged": bool,
    "identical": bool,
}


def fleet_point(fast: bool):
    """The pinned benchmark point: ``(spec, compiled trace, config)``."""
    spec = FleetSpec(**(_FAST_SPEC if fast else _FULL_SPEC))
    trace = compile_trace(fleet_trace(spec, "steady"))
    # Parallel-eligible configuration: deterministic filer, syncer-free
    # async write-back on both tiers (see docs/INVARIANTS.md).
    config = baseline_config(
        scale=DEFAULT_SCALE,
        ram_policy=WritebackPolicy.parse("a"),
        flash_policy=WritebackPolicy.parse("a"),
    )
    config = replace(
        config,
        timing=replace(config.timing, filer=FilerTiming(fast_read_rate=1.0)),
    )
    return spec, trace, config


def measure(fast: bool, repeats: int) -> Dict:
    """Benchmark one serial-vs-parallel pair; returns the section."""
    spec, trace, config = fleet_point(fast)
    analysis = analyze_partition(trace, spec.n_hosts)
    groups = plan_groups(analysis, WORKERS)
    group_rows = [
        sum(analysis.host_rows.get(host, 0) for host in group) for group in groups
    ]
    ideal = (sum(group_rows) / max(group_rows)) if max(group_rows, default=0) else 1.0

    def timed(parallel_hosts: Optional[int]):
        walls = []
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_simulation(
                trace,
                config,
                n_hosts=spec.n_hosts,
                check_invariants=False,
                parallel_hosts=parallel_hosts,
            )
            walls.append(time.perf_counter() - start)
        return min(walls), result

    serial_wall, serial_result = timed(None)
    parallel_wall, parallel_result = timed(WORKERS)
    outcome = parallel_engine.last_outcome()
    engaged = outcome is not None and outcome.kind == "parallel"
    reference = full_signature(serial_result)
    candidate = full_signature(parallel_result)
    mismatches = [
        "%s: serial %r != parallel %r"
        % (key, reference.get(key), candidate.get(key))
        for key in reference
        if reference.get(key) != candidate.get(key)
    ]
    return {
        "n_hosts": spec.n_hosts,
        "n_tenants": spec.n_tenants,
        "records": len(trace),
        "workers": WORKERS,
        "groups": len(groups),
        "group_rows": group_rows,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2),
        "ideal_speedup": round(ideal, 2),
        "cpus": os.cpu_count() or 1,
        "tier": outcome.tier if outcome is not None else "",
        "engaged": engaged,
        "identical": not mismatches,
        "mismatches": mismatches[:10],
    }


def validate_section(section: object) -> List[str]:
    """Problems with a ``parallel`` section (for ``--check``)."""
    problems: List[str] = []
    if not isinstance(section, dict):
        return ["parallel section missing or not a mapping"]
    for key, kind in _PARALLEL_KEYS.items():
        value = section.get(key)
        if kind is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, kind):
            problems.append("parallel.%s missing or mistyped" % key)
    if section.get("engaged") is False:
        problems.append("parallel engine did not engage")
    if section.get("identical") is False:
        problems.append(
            "parallel replay drifted from serial: %s"
            % "; ".join(section.get("mismatches", [])[:3])
        )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/fleet_parallel.py",
        description="Serial-vs-sharded fleet replay benchmark "
        "(bit-identity gated; speedup recorded).",
    )
    parser.add_argument(
        "--fast", action="store_true", help="small fleet for a CI-sized smoke run"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of repeats per leg (default: 2 with --fast, else 1)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=str(REPO_ROOT / "BENCH_replay.json"),
        help="BENCH_replay.json to update (the parallel section is "
        "added or replaced; other sections are preserved)",
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        metavar="FILE",
        help="validate FILE's parallel section instead of benchmarking",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        payload = json.loads(Path(args.check).read_text())
        problems = validate_section(payload.get("parallel"))
        if problems:
            for problem in problems:
                print("FAIL %s" % problem)
            return 1
        section = payload["parallel"]
        print(
            "OK parallel: %d hosts / %d records, %d groups over %d workers, "
            "%.2fx measured (%.2fx ideal) on %d cpu(s), bit-identical"
            % (
                section["n_hosts"],
                section["records"],
                section["groups"],
                section["workers"],
                section["speedup"],
                section["ideal_speedup"],
                section["cpus"],
            )
        )
        return 0

    repeats = args.repeats if args.repeats is not None else (2 if args.fast else 1)
    try:
        section = measure(args.fast, max(1, repeats))
    finally:
        shutdown_pool()
    out_path = Path(args.out)
    payload: Dict = {}
    if out_path.exists():
        payload = json.loads(out_path.read_text())
    payload["parallel"] = section
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        "fleet %d hosts, %d records -> %d groups over %d workers"
        % (section["n_hosts"], section["records"], section["groups"], WORKERS)
    )
    print(
        "serial %.2fs, parallel %.2fs: %.2fx measured, %.2fx ideal, %d cpu(s)"
        % (
            section["serial_wall_s"],
            section["parallel_wall_s"],
            section["speedup"],
            section["ideal_speedup"],
            section["cpus"],
        )
    )
    if not section["engaged"]:
        print("FAIL parallel engine declined: %s" % (parallel_engine.last_outcome(),))
        return 3
    if not section["identical"]:
        for mismatch in section["mismatches"]:
            print("FAIL signature drift: %s" % mismatch)
        return 3
    print("signatures bit-identical")
    if section["cpus"] >= WORKERS and section["speedup"] < 2.0:
        print(
            "FAIL speedup %.2fx below 2x target on %d cpus"
            % (section["speedup"], section["cpus"])
        )
        return 3
    if section["cpus"] < WORKERS:
        print(
            "note: %d cpu(s) < %d workers, wall-clock target not enforced"
            % (section["cpus"], WORKERS)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
