"""Figure 6 — latency vs. RAM cache size (60 GB working set).

Paper shape: zero RAM performs poorly; a small RAM plus asynchronous
write-through already writes at RAM speed (the paper's "256 KB is
sufficient as a write buffer"); the periodic policy needs more RAM to
absorb dirty blocks between syncer runs; reads are largely flat once
any reasonable RAM exists.

Scaling note: the write-buffer knee is set by thread count and flash
write latency — *absolute* block counts, not a fraction of geometry —
so at scaled geometry the knee sits at a larger paper-equivalent RAM
size than 256 KB.  The shape (a tiny fraction of the 8 GB baseline
suffices) is what we assert.
"""

from repro.experiments import figure6

from conftest import run_experiment


def test_figure6_small_ram(benchmark):
    result = run_experiment(benchmark, figure6.run)
    rows = result.rows
    no_ram = rows[0]
    baseline = rows[-1]
    assert no_ram["ram_blocks"] == 0

    # Zero RAM: writes see the flash write latency instead of RAM speed.
    assert no_ram["write_a_us"] > 10 * baseline["write_a_us"]

    # With the async policy, a tiny write buffer reaches RAM-speed
    # writes well below the baseline RAM size.
    knee_rows = [
        r
        for r in rows
        if 0 < r["ram_blocks"] <= max(1, baseline["ram_blocks"] // 8)
    ]
    assert any(r["write_a_us"] < 1.0 for r in knee_rows), (
        "a small RAM + async write-through should already write at RAM speed"
    )

    # The periodic syncer needs more RAM than async at the same size.
    smallest_nonzero = next(r for r in rows if r["ram_blocks"] > 0)
    assert smallest_nonzero["write_p1_us"] >= smallest_nonzero["write_a_us"]

    # Reads are comparable across RAM sizes (the flash does the work).
    reads = [r["read_a_us"] for r in rows if r["ram_blocks"] > 0]
    assert max(reads) < 1.6 * min(reads)
