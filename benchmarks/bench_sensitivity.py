"""Extension bench: the §4 robustness claim the paper states without
data — conclusions hold across working-set fractions and thread counts."""

from repro.experiments import sensitivity

from conftest import run_experiment


def test_sensitivity_grid(benchmark):
    result = run_experiment(benchmark, sensitivity.run)

    wins = [row["flash_win"] for row in result.rows]

    # The flash wins at every grid point...
    for row in result.rows:
        assert row["flash_win"] > 1.5, (
            "flash should clearly win at ws_fraction=%s threads=%s"
            % (row["ws_fraction"], row["threads"])
        )
        # ... and writes stay at RAM speed everywhere.
        assert row["flash_write_us"] < 2.0

    # The win's magnitude is stable: no grid point collapses the
    # conclusion (within a factor of ~2 of the median win).
    wins_sorted = sorted(wins)
    median_win = wins_sorted[len(wins_sorted) // 2]
    assert min(wins) > median_win / 2
    assert max(wins) < median_win * 2
