"""Extension bench: do the paper's motivating workloads (§1) actually
benefit from client flash — and which ones?"""

from repro.experiments import scenarios

from conftest import run_experiment


def test_motivating_scenarios(benchmark):
    result = run_experiment(benchmark, scenarios.run)
    by_name = {row["scenario"]: row for row in result.rows}

    # Writes land in RAM for every scenario (the §7.1 conclusion
    # generalizes across workload shapes).
    for row in result.rows:
        assert row["flash_write_us"] < 2.0

    # The skewed random-read web workload benefits most; the streaming
    # render workload benefits least (its sequential sweeps defeat an
    # LRU cache smaller than the asset set, and the filer's prefetcher
    # already serves it well).
    assert by_name["web_app"]["read_speedup"] > by_name["render_farm"]["read_speedup"]
    assert by_name["web_app"]["read_speedup"] > 1.2
    assert by_name["web_app"]["flash_hit_pct"] > 25.0

    # No scenario is actively hurt.
    for row in result.rows:
        assert row["read_speedup"] > 0.95

    # The checkpointing scientific workload also gains: its dataset
    # re-reads hit the flash between checkpoint bursts.
    assert by_name["scientific"]["read_speedup"] > 1.1
