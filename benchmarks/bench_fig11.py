"""Figure 11 — invalidations and read latency vs. write percentage
(two hosts sharing one working set).

Paper shape: with the 64 GB flash the fraction of writes requiring
invalidation is much higher than RAM-only (the big cache keeps shared
blocks alive); read latency rises with the invalidation rate because
invalidated blocks must be refetched from the filer.
"""

from repro.experiments import figure11

from conftest import run_experiment


def test_figure11_invalidations_vs_write_ratio(benchmark):
    result = run_experiment(benchmark, figure11.run)

    for row in result.rows:
        # The flash cache sees at least as many invalidations as the
        # RAM-only configuration, for both working sets.
        assert row["inval_flash80_pct"] >= row["inval_noflash80_pct"]
        assert row["inval_flash60_pct"] >= row["inval_noflash60_pct"]
        # Invalidation percentages are substantial with flash.
        assert row["inval_flash60_pct"] > 10.0

    # Sharing hurts reads: the with-flash read latency at high write
    # ratios is no better than at low ones (invalidation refetches).
    low = result.rows[0]
    high = result.rows[-1]
    assert high["read_flash80_us"] > 0
    assert low["inval_flash80_pct"] > 0
