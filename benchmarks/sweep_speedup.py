#!/usr/bin/env python
"""Sweep-engine benchmark: compiled-trace replay and fan-out overhead.

The persistent companion of ``benchmarks/replay_hotpath.py``, aimed at
the two costs the compiled-trace work attacks:

* **replay** — one pinned-seed ~1M-record replay, object form versus
  the packed columnar form (``repro.traces.compiled``), with the full
  result signature of each (they must be bit-identical);
* **distribution** — a 49-point writeback-policy-matrix sweep, run the
  legacy way (fresh pool per call, disk-spooled traces) and the current
  way (warm persistent pool, zero-copy shared-memory fan-out).  The
  figure of merit is *overhead*: sweep wall time minus the ideal
  parallel simulation time (summed per-point busy time divided by the
  usable cores), i.e. everything the engine adds on top of simulating;
* **scaling** — the original figure2 serial-vs-parallel sanity check
  (kept for the CI sweep-speedup job and its ``--min-speedup`` gate).

Results merge into ``BENCH_sweep.json`` following the replay_hotpath
conventions: the stored ``baseline`` section survives re-runs of the
same geometry, ``--reset-baseline`` restarts it, and any result
signature drift between baseline and post is an error (exit 3) unless
``--allow-signature-drift`` is given.

Usage::

    PYTHONPATH=src python benchmarks/sweep_speedup.py             # full run
    PYTHONPATH=src python benchmarks/sweep_speedup.py --fast --check
    PYTHONPATH=src python benchmarks/sweep_speedup.py --check BENCH_sweep.json

``--check`` with a FILE argument only validates that file's schema;
bare ``--check`` additionally enforces the speedup targets after a
full-size run (targets are not enforced under ``--fast``, where the
trace is too small for stable ratios).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._units import MB  # noqa: E402
from repro.core.config import SimConfig, WritebackPolicy  # noqa: E402
from repro.core.simulator import COMPILE_ENV, run_simulation  # noqa: E402
from repro.fsmodel.impressions import ImpressionsConfig  # noqa: E402
from repro.sweep import (  # noqa: E402
    NO_SHM_ENV,
    SweepPoint,
    run_sweep_points,
    shutdown_pool,
)
from repro.tracegen.config import TraceGenConfig  # noqa: E402
from repro.tracegen.generator import generate_trace  # noqa: E402
from repro.traces.compiled import compile_trace  # noqa: E402
from repro.validation.differential import result_signature  # noqa: E402

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Acceptance targets, enforced by bare ``--check`` on full-size runs.
REPLAY_TARGET = 1.2
DISTRIBUTION_TARGET = 2.0

#: Pinned seed of every benchmark trace (fixed: the benchmark is a
#: regression trajectory, not a sampling experiment).
SEED = 20260806


def _bench_trace(volume_multiple: float) -> TraceGenConfig:
    """The pinned replay workload: RAM-resident working set, short
    requests — the regime where per-record driver overhead (what
    compilation removes) is the largest share of replay time."""
    return TraceGenConfig(
        fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB),
        working_set_bytes=4 * MB,
        n_hosts=2,
        threads_per_host=2,
        io_mean_blocks=2.0,
        volume_multiple=volume_multiple,
        seed=SEED,
    )


def _policy_matrix() -> List[SimConfig]:
    """A 7x7 RAM-policy x flash-policy matrix (figure6-style grid)."""
    policies = [
        WritebackPolicy.sync(),
        WritebackPolicy.asynchronous(),
        WritebackPolicy.periodic(10.0),
        WritebackPolicy.periodic(30.0),
        WritebackPolicy.periodic(60.0),
        WritebackPolicy.trickle(30.0),
        WritebackPolicy.delayed(30.0),
    ]
    base = SimConfig.baseline_scaled(1024)
    return [
        SimConfig(
            ram_bytes=base.ram_bytes,
            flash_bytes=base.flash_bytes,
            ram_policy=ram_policy,
            flash_policy=flash_policy,
        )
        for ram_policy in policies
        for flash_policy in policies
    ]


# --- schema -------------------------------------------------------------

_RUN_KEYS = {
    "wall_s": float,
    "blocks": int,
    "blocks_per_sec": float,
    "records": int,
    "signature": dict,
}
_DIST_MODE_KEYS = {
    "wall_s": float,
    "busy_s": float,
    "overhead_s": float,
}
_SECTION_KEYS = {
    "replay": dict,
    "distribution": dict,
    "scaling": dict,
}
_TOP_KEYS = {
    "schema": int,
    "python": str,
    "fast": bool,
    "workers": int,
    "baseline": dict,
    "post": dict,
    "speedup": dict,
}


def validate_payload(payload: Dict) -> List[str]:
    """Validate a BENCH_sweep.json payload; return a list of problems."""
    problems: List[str] = []

    def typed(value, kind) -> bool:
        if kind is float and isinstance(value, int):
            return True
        return isinstance(value, kind)

    for key, kind in _TOP_KEYS.items():
        if key not in payload:
            problems.append("missing top-level key %r" % key)
        elif not typed(payload[key], kind):
            problems.append(
                "%r should be %s, got %s"
                % (key, kind.__name__, type(payload[key]).__name__)
            )
    for section_name in ("baseline", "post"):
        section = payload.get(section_name)
        if not isinstance(section, dict):
            continue
        for key, kind in _SECTION_KEYS.items():
            if not isinstance(section.get(key), kind):
                problems.append("%s.%s missing or mistyped" % (section_name, key))
        replay = section.get("replay")
        if isinstance(replay, dict):
            for mode in ("object", "compiled"):
                run = replay.get(mode)
                if not isinstance(run, dict):
                    problems.append("%s.replay.%s missing" % (section_name, mode))
                    continue
                for key, kind in _RUN_KEYS.items():
                    if not typed(run.get(key), kind):
                        problems.append(
                            "%s.replay.%s.%s missing or mistyped"
                            % (section_name, mode, key)
                        )
            if not typed(replay.get("speedup"), float):
                problems.append("%s.replay.speedup missing" % section_name)
        distribution = section.get("distribution")
        if isinstance(distribution, dict):
            for mode in ("legacy", "current"):
                run = distribution.get(mode)
                if not isinstance(run, dict):
                    problems.append(
                        "%s.distribution.%s missing" % (section_name, mode)
                    )
                    continue
                for key, kind in _DIST_MODE_KEYS.items():
                    if not typed(run.get(key), kind):
                        problems.append(
                            "%s.distribution.%s.%s missing or mistyped"
                            % (section_name, mode, key)
                        )
            for key in ("points", "overhead_ratio", "identical"):
                if key not in distribution:
                    problems.append("%s.distribution.%s missing" % (section_name, key))
    speedup = payload.get("speedup")
    if isinstance(speedup, dict):
        for key in ("replay_blocks_per_sec", "distribution_overhead"):
            if key not in speedup:
                problems.append("speedup.%s missing" % key)
    return problems


# --- replay: object form vs compiled form --------------------------------


def _timed_replay(trace, config, repeats: int) -> Dict:
    walls = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_simulation(trace, config)
        walls.append(time.perf_counter() - start)
    blocks = sum(trace.nblocks) if hasattr(trace, "nblocks") else sum(
        record.nblocks for record in trace.records
    )
    wall = min(walls)
    return {
        "wall_s": round(wall, 4),
        "blocks": int(blocks),
        "blocks_per_sec": round(blocks / wall, 1),
        "records": len(trace),
        "signature": result_signature(result),
    }


def _bench_replay(fast: bool, repeats: int) -> Dict:
    volume_multiple = 128.0 if fast else 2048.0
    trace = generate_trace(_bench_trace(volume_multiple))
    config = SimConfig.baseline_scaled(1024)

    # Object-form baseline: auto-compilation disabled via its own knob,
    # so this measures the pre-compiled-trace replay path.
    saved = os.environ.get(COMPILE_ENV)
    os.environ[COMPILE_ENV] = "0"
    try:
        object_run = _timed_replay(trace, config, repeats)
    finally:
        if saved is None:
            os.environ.pop(COMPILE_ENV, None)
        else:
            os.environ[COMPILE_ENV] = saved

    compiled_run = _timed_replay(compile_trace(trace), config, repeats)
    return {
        "object": object_run,
        "compiled": compiled_run,
        "speedup": round(object_run["wall_s"] / compiled_run["wall_s"], 3),
    }


# --- distribution: fan-out overhead of a 49-point sweep ------------------


def _timed_sweep(
    points, workers: int, repeats: int, fresh_pool: bool, busy_serial: float
) -> Dict:
    """Best-of-``repeats`` overhead of one sweep execution mode.

    ``overhead = wall - busy_serial / usable_cores``: what the engine
    spends on worker startup, trace distribution and result collection
    beyond the ideal parallel simulation time.  The busy reference is
    measured *serially* (contention-free), so the metric is honest on
    any core count — on a single core the ideal time is the serial
    sweep itself, and overhead is everything the pool adds on top.
    """
    usable = max(1, min(workers, os.cpu_count() or 1))
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = run_sweep_points(points, workers=workers, fresh_pool=fresh_pool)
        wall = time.perf_counter() - start
        overhead = max(0.0, wall - busy_serial / usable)
        if best is None or overhead < best[0]:
            best = (overhead, wall, outcome)
    overhead, wall, outcome = best
    return {
        "wall_s": round(wall, 4),
        "busy_s": round(busy_serial, 4),
        "overhead_s": round(overhead, 4),
        "outcome": outcome,
    }


def _bench_distribution(fast: bool, workers: int, repeats: int) -> Dict:
    volume_multiple = 2.0 if fast else 8.0
    trace = generate_trace(_bench_trace(volume_multiple))
    points = [SweepPoint(config=config, trace=trace) for config in _policy_matrix()]

    # Contention-free busy reference + the ground-truth results both
    # execution modes must reproduce exactly.
    start = time.perf_counter()
    serial = run_sweep_points(points, workers=1)
    busy_serial = time.perf_counter() - start

    # Legacy mode: what every sweep paid before this engine existed —
    # a worker pool spawned per call and traces spooled through disk.
    saved = os.environ.get(NO_SHM_ENV)
    os.environ[NO_SHM_ENV] = "1"
    try:
        shutdown_pool()
        legacy = _timed_sweep(
            points, workers, repeats, fresh_pool=True, busy_serial=busy_serial
        )
    finally:
        if saved is None:
            os.environ.pop(NO_SHM_ENV, None)
        else:
            os.environ[NO_SHM_ENV] = saved

    # Current mode: persistent pool (warmed once, as steady-state sweeps
    # see it) + zero-copy shared-memory fan-out.
    shutdown_pool()
    run_sweep_points(points[:workers], workers=workers)  # warm the pool
    current = _timed_sweep(
        points, workers, repeats, fresh_pool=False, busy_serial=busy_serial
    )

    legacy_results = legacy.pop("outcome").results
    current_results = current.pop("outcome").results
    identical = all(
        a.as_dict() == b.as_dict() == c.as_dict()
        for a, b, c in zip(serial.results, legacy_results, current_results)
    )
    # 10 ms noise floor: "overhead below measurement noise" must
    # not turn into an unbounded ratio.
    ratio = legacy["overhead_s"] / max(current["overhead_s"], 0.01)
    return {
        "points": len(points),
        "legacy": legacy,
        "current": current,
        "overhead_ratio": round(ratio, 2),
        "identical": identical,
    }


# --- scaling: the original figure2 serial-vs-parallel check --------------


def _bench_scaling(scale: int, workers: int, fast_grid: bool) -> Dict:
    from repro.experiments import figure2

    def timed(n_workers: int):
        start = time.perf_counter()
        result = figure2.run(scale=scale, fast=fast_grid, workers=n_workers)
        return time.perf_counter() - start, result

    serial_s, serial_result = timed(1)
    parallel_s, parallel_result = timed(workers)
    return {
        "workers": workers,
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": serial_result.rows == parallel_result.rows,
    }


def measure(fast: bool, workers: int, repeats: int, scale: int) -> Dict:
    replay = _bench_replay(fast, repeats)
    distribution = _bench_distribution(fast, workers, max(1, repeats - 1))
    scaling = _bench_scaling(scale, workers, fast_grid=True)
    return {"replay": replay, "distribution": distribution, "scaling": scaling}


# --- merging and drift checks -------------------------------------------


def _signature_drift(baseline: Dict, post: Dict) -> List[str]:
    problems: List[str] = []
    for mode in ("object", "compiled"):
        base_run = baseline.get("replay", {}).get(mode)
        post_run = post.get("replay", {}).get(mode)
        if base_run is None or post_run is None:
            continue
        base_sig, post_sig = base_run["signature"], post_run["signature"]
        for key in base_sig:
            if base_sig.get(key) != post_sig.get(key):
                problems.append(
                    "%s.%s: %r != %r"
                    % (mode, key, base_sig.get(key), post_sig.get(key))
                )
    return problems


def merge_payload(
    existing: Optional[Dict],
    current: Dict,
    fast: bool,
    workers: int,
    reset_baseline: bool,
) -> Dict:
    baseline = current
    if (
        existing is not None
        and not reset_baseline
        and existing.get("fast") == fast
        and existing.get("workers") == workers
        and isinstance(existing.get("baseline"), dict)
    ):
        baseline = existing["baseline"]

    def ratio(select) -> Optional[float]:
        try:
            base, post = select(baseline), select(current)
        except (KeyError, TypeError):
            return None
        return round(post / base, 3) if base else None

    speedup = {
        "replay_blocks_per_sec": ratio(
            lambda s: s["replay"]["compiled"]["blocks_per_sec"]
        ),
        # Overheads shrink, so baseline/post > 1 means "got faster".
        "distribution_overhead": ratio(
            lambda s: 1.0 / max(s["distribution"]["current"]["overhead_s"], 0.01)
        ),
    }
    return {
        "schema": SCHEMA_VERSION,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "fast": fast,
        "workers": workers,
        "baseline": baseline,
        "post": current,
        "speedup": speedup,
    }


# --- CLI ----------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/sweep_speedup.py",
        description="Compiled-trace replay and sweep fan-out benchmark "
        "(writes BENCH_sweep.json).",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--fast", action="store_true", help="CI-sized run: smaller traces, one repeat"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=int(os.environ.get("REPRO_SCALE_DIVISOR", "4096")),
        help="geometry divisor for the figure2 scaling phase",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the figure2 parallel speedup meets this bound",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="output JSON path (default: repo-root BENCH_sweep.json)",
    )
    parser.add_argument(
        "--reset-baseline",
        action="store_true",
        help="discard the stored baseline and restart it from this run",
    )
    parser.add_argument(
        "--allow-signature-drift",
        action="store_true",
        help="do not fail when post signatures differ from the baseline",
    )
    parser.add_argument(
        "--check",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help="with FILE: only validate FILE against the schema and exit; "
        "bare: also enforce the speedup targets after this run "
        "(full-size runs only)",
    )
    args = parser.parse_args(argv)

    if args.check not in (None, True):
        payload = json.loads(Path(args.check).read_text())
        problems = validate_payload(payload)
        if problems:
            print("schema validation FAILED for %s:" % args.check)
            for problem in problems:
                print("  - %s" % problem)
            return 2
        print("schema OK: %s" % args.check)
        return 0

    repeats = args.repeats if args.repeats is not None else (1 if args.fast else 3)
    cores = os.cpu_count() or 1
    print("cores available: %d; sweep workers: %d" % (cores, args.workers))

    current = measure(args.fast, args.workers, repeats, args.scale)

    existing = None
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except (ValueError, OSError):
            existing = None
    payload = merge_payload(
        existing, current, args.fast, args.workers, args.reset_baseline
    )

    problems = validate_payload(payload)
    if problems:
        print("internal error: emitted payload fails its own schema:")
        for problem in problems:
            print("  - %s" % problem)
        return 2
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    replay = payload["post"]["replay"]
    print(
        "replay     object %7.3fs  compiled %7.3fs  (%.2fx, %d records)"
        % (
            replay["object"]["wall_s"],
            replay["compiled"]["wall_s"],
            replay["speedup"],
            replay["compiled"]["records"],
        )
    )
    distribution = payload["post"]["distribution"]
    print(
        "distribute %d points: legacy overhead %.3fs, current %.3fs "
        "(%.2fx less)  identical: %s"
        % (
            distribution["points"],
            distribution["legacy"]["overhead_s"],
            distribution["current"]["overhead_s"],
            distribution["overhead_ratio"],
            distribution["identical"],
        )
    )
    scaling = payload["post"]["scaling"]
    print(
        "figure2    serial %.2fs, %d workers %.2fs (%.2fx)  identical: %s"
        % (
            scaling["serial_wall_s"],
            scaling["workers"],
            scaling["parallel_wall_s"],
            scaling["parallel_speedup"],
            scaling["identical"],
        )
    )

    failures: List[str] = []
    if not distribution["identical"]:
        failures.append("legacy and current distribution results differ")
    if not scaling["identical"]:
        failures.append("parallel figure2 results differ from serial")
    if replay["object"]["signature"] != replay["compiled"]["signature"]:
        failures.append("compiled replay signature differs from object replay")
    if args.min_speedup is not None and (
        scaling["parallel_speedup"] is None
        or scaling["parallel_speedup"] < args.min_speedup
    ):
        failures.append(
            "figure2 speedup %s below required %.2fx"
            % (scaling["parallel_speedup"], args.min_speedup)
        )
    if args.check is True and not args.fast:
        if replay["speedup"] < REPLAY_TARGET:
            failures.append(
                "replay speedup %.2fx below the %.1fx target"
                % (replay["speedup"], REPLAY_TARGET)
            )
        if distribution["overhead_ratio"] < DISTRIBUTION_TARGET:
            failures.append(
                "distribution overhead ratio %.2fx below the %.1fx target"
                % (distribution["overhead_ratio"], DISTRIBUTION_TARGET)
            )
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1

    drift = _signature_drift(payload["baseline"], payload["post"])
    if drift:
        print("result-signature drift vs stored baseline:")
        for problem in drift[:10]:
            print("  - %s" % problem)
        if not args.allow_signature_drift:
            print(
                "refusing to accept drifting results "
                "(--allow-signature-drift or --reset-baseline to override)"
            )
            return 3
    else:
        print("result signatures: bit-identical to stored baseline")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
