#!/usr/bin/env python
"""Measure the parallel sweep speedup on figure2's grid.

Runs the figure2 experiment serially (``workers=1``) and in parallel
(``--workers``, default 4) and prints both wall times, the speedup, and
whether the two runs produced identical tables — the acceptance check
for ``repro.sweep``'s process-pool execution path.

The speedup is only meaningful on a multi-core machine: with a single
CPU the pool adds pickling overhead and the script reports (honestly)
a speedup near or below 1.  CI runs this on a multi-core runner and
asserts >= the ``--min-speedup`` bound there.

Run:  PYTHONPATH=src python benchmarks/sweep_speedup.py [--workers 4]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def measure(workers: int, scale: int, fast: bool) -> tuple:
    from repro.experiments import figure2

    started = time.perf_counter()
    result = figure2.run(scale=scale, fast=fast, workers=workers)
    return time.perf_counter() - started, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--scale",
        type=int,
        default=int(os.environ.get("REPRO_SCALE_DIVISOR", "4096")),
        help="geometry divisor (smaller = more work per point)",
    )
    parser.add_argument("--full", action="store_true", help="full (non-fast) grid")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero unless parallel/serial speedup meets this bound",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    print("cores available: %d; sweep workers: %d" % (cores, args.workers))

    serial_s, serial_result = measure(1, args.scale, fast=not args.full)
    parallel_s, parallel_result = measure(args.workers, args.scale, fast=not args.full)

    identical = serial_result.rows == parallel_result.rows
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print("serial   (workers=1): %6.2f s" % serial_s)
    print("parallel (workers=%d): %6.2f s" % (args.workers, parallel_s))
    print("speedup: %.2fx   results identical: %s" % (speedup, identical))
    if cores == 1:
        print(
            "note: single-core machine — the pool can only add overhead "
            "here; run on >= %d cores for a meaningful speedup" % args.workers
        )

    if not identical:
        print("FAIL: parallel results differ from serial", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            "FAIL: speedup %.2fx below required %.2fx"
            % (speedup, args.min_speedup),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
