"""Figure 2 — 49 writeback-policy combinations x 3 architectures.

Paper shape (§7.1): the latency surface is flat except where policies
expose synchronous filer writes; the unified architecture has the
lowest read latencies (larger effective capacity) while naive and
lookaside write at RAM speed and unified writes at ~8/9 of the flash
write latency.
"""

import statistics

from repro.experiments import figure2

from conftest import run_experiment


def rows_for(result, arch):
    return [row for row in result.rows if row["arch"] == arch]


def row(result, arch, ram, flash):
    return next(
        r
        for r in rows_for(result, arch)
        if r["ram_policy"] == ram and r["flash_policy"] == flash
    )


def test_figure2_policy_grid(benchmark):
    result = run_experiment(benchmark, figure2.run)

    # --- writeback policy does not matter, excepting combinations that
    # result in synchronous writes to the filer: RAM policy "s" chains,
    # flash policy "s" (the syncer's filer writes convoy) and "n"
    # (dirty-eviction convoys once the flash fills) ---
    benign_policies = ("a", "p1", "p5", "p15", "p30")
    for arch in ("naive", "lookaside"):
        benign = [
            r["write_us"]
            for r in rows_for(result, arch)
            if r["ram_policy"] in benign_policies
            and r["flash_policy"] in benign_policies
        ]
        # All benign combinations write at RAM speed.
        assert max(benign) < 5.0, "%s benign writes should be ~0.4 us" % arch
        # The fully synchronous chain is orders of magnitude slower.
        ss = row(result, arch, "s", "s")
        assert ss["write_us"] > 20 * max(benign)

    # --- read latencies are flat across policies within an arch ---
    for arch in ("naive", "lookaside", "unified"):
        reads = [r["read_us"] for r in rows_for(result, arch)]
        assert max(reads) < 1.5 * statistics.median(reads)

    # --- unified reads lowest on the 80 GB working set ---
    unified_reads = statistics.median(r["read_us"] for r in rows_for(result, "unified"))
    naive_reads = statistics.median(r["read_us"] for r in rows_for(result, "naive"))
    assert unified_reads < naive_reads * 1.02

    # --- naive/lookaside writes lowest; unified pays ~8/9 flash write ---
    unified_aa = row(result, "unified", "a", "a")
    naive_aa = row(result, "naive", "a", "a")
    assert naive_aa["write_us"] < 1.0
    assert 8.0 < unified_aa["write_us"] < 35.0  # ~8/9 * 21 us plus noise
