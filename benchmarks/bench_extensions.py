"""Extension benches: recovery cost (§7.8's gap), the post-restart
latency timeline, and host-count scaling (§3.8's open scalability
question)."""

from repro.experiments import multihost, recovery, recovery_timeline

from conftest import run_experiment


def test_recovery_scan_sweep(benchmark):
    result = run_experiment(benchmark, recovery.run)
    by_restart = {row["restart"]: row for row in result.rows}

    volatile = by_restart["volatile crash"]
    instant = by_restart["persistent scan=0us"]

    # Recovering a warm cache for free clearly beats losing it.
    assert instant["read_us"] < volatile["read_us"]
    assert instant["filer_reads"] < volatile["filer_reads"]

    # Recovery cost is monotone in the scan time (up to sampling noise;
    # very slow scans saturate once the flash never comes back online
    # within the run, so consecutive points may coincide).
    scans = [row for row in result.rows if row["restart"].startswith("persistent")]
    reads = [row["read_us"] for row in scans]
    for earlier, later in zip(reads, reads[1:]):
        assert later >= earlier * 0.97

    # A sufficiently slow scan erodes the benefit toward (or past) the
    # volatile crash: the extension's headline finding.
    assert scans[-1]["read_us"] > instant["read_us"] * 1.05


def test_recovery_timeline(benchmark):
    result = run_experiment(benchmark, recovery_timeline.run)
    rows = [row for row in result.rows if row["warm_us"] > 0]
    assert len(rows) >= 5

    early = rows[0]
    # Right after the restart, both damaged configurations sit far
    # above the warm baseline (filer-latency regime).
    assert early["cold_us"] > 2.0 * early["warm_us"]
    assert early["recovering_us"] > 2.0 * early["warm_us"]

    # By mid-run the recovering cache has snapped back to the warm
    # level while the cold cache is still refilling.
    midpoint = rows[len(rows) // 2]
    assert midpoint["recovering_us"] < 2.0 * midpoint["warm_us"]

    # Integrated over the run, recovering beats cold.
    cold_total = sum(row["cold_us"] for row in rows)
    recovering_total = sum(row["recovering_us"] for row in rows)
    assert recovering_total < cold_total


def test_multihost_scaling(benchmark):
    result = run_experiment(benchmark, multihost.run)
    rows = result.rows

    # One host needs no invalidations.
    assert rows[0]["hosts"] == 1
    assert rows[0]["inval_pct"] == 0.0

    # Invalidation pressure grows with the host count.
    inval = [row["inval_pct"] for row in rows]
    assert inval[-1] > inval[1] > inval[0]

    # The invalidation refetches surface as filer reads per shared
    # working set: more hosts, more refetch traffic.
    assert rows[-1]["filer_reads"] > rows[0]["filer_reads"]
