"""Figure 1 — SSD read/write latency vs. cumulative I/Os.

Paper shape: write latency flat from start to finish; read latency
above it and drifting upward as the device fills; cache-workload reads
much faster than purely random reads.
"""

from repro.experiments import figure1

from conftest import run_experiment


def test_figure1_ssd_latency_over_time(benchmark):
    result = run_experiment(benchmark, figure1.run, scale=1024)
    reads = result.column("read_us")
    writes = result.column("write_us")

    # Reads sit above writes everywhere (the figure's top vs bottom bands).
    assert all(r > w for r, w in zip(reads, writes))

    # Write latency is stable start to finish (finding 2).
    assert max(writes) < 1.1 * min(writes)

    # Read latency drifts upward as the device fills (finding 3):
    # the final group is clearly slower than the first.
    assert reads[-1] > reads[0] * 1.15

    # The replay-vs-random contrast is recorded in the notes.
    assert "random reads" in result.notes
