"""Figure 8 — latency vs. write percentage.

Paper shape: read latency stable across write ratios; write latency at
RAM speed until very high write rates, where the RAM syncer falls
behind and synchronous evictions expose the flash write latency.
"""

from repro.experiments import figure8

from conftest import run_experiment


def test_figure8_write_ratio(benchmark):
    result = run_experiment(benchmark, figure8.run)
    by_pct = {row["write_pct"]: row for row in result.rows}

    moderate = [row for row in result.rows if 0 < row["write_pct"] <= 60]
    low = [row for row in result.rows if 0 < row["write_pct"] <= 30]

    # Read latency is stable in the low-to-moderate range.  (Known
    # scale deviation, recorded in EXPERIMENTS.md: beyond ~50% writes
    # the scaled runs start queueing read requests behind writeback
    # data on the host->filer wire earlier than the paper's full-scale
    # runs do.)
    for ws in ("60", "80"):
        reads = [row["read%s_us" % ws] for row in low]
        assert max(reads) < 1.5 * min(reads)
        all_moderate = [row["read%s_us" % ws] for row in moderate]
        assert max(all_moderate) < 2.5 * min(all_moderate)

    # Write latency stays near RAM speed through the moderate range.
    for row in moderate:
        assert row["write60_us"] < 5.0
        assert row["write80_us"] < 5.0

    # At 90% writes the syncer starts to fall behind: write latency is
    # no better than in the moderate range.
    if 90 in by_pct:
        assert by_pct[90]["write60_us"] >= min(r["write60_us"] for r in moderate)
