"""Figure 3 — effective cache size (structure vs. medium latency).

Paper shape: the RAM-speed naive 8+64 and RAM-speed unified 8+56 curves
coincide (equal effective capacity); the real-flash curve sits above
them by the flash medium's latency and converges to them at both ends
(tiny working sets hit RAM, huge ones miss everything).
"""

import pytest

from repro.experiments import figure3

from conftest import run_experiment


def test_figure3_effective_cache_size(benchmark):
    result = run_experiment(benchmark, figure3.run)

    for row in result.rows:
        # Equal effective capacity: the two pretend-RAM curves track
        # each other closely at every working-set size.
        assert row["naive_ramspeed_us"] == pytest.approx(
            row["unified_56_ramspeed_us"], rel=0.25
        )
        # The real flash is never meaningfully faster than the same
        # structure at RAM speed.
        assert row["naive_flash_us"] >= row["naive_ramspeed_us"] * 0.9

    # The medium-latency gap is visible where the flash absorbs most
    # hits (working sets around the flash size).
    mid = [r for r in result.rows if 40.0 <= r["ws_gb"] <= 80.0]
    assert any(r["naive_flash_us"] > r["naive_ramspeed_us"] * 1.08 for r in mid)
