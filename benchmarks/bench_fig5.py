"""Figure 5 — filer prefetch-rate sensitivity.

Paper shape: the prefetch rate dominates application read latency; a
flash cache at a pessimal 80% prefetch rate can be *worse* than no
flash at an optimistic 95% — except in the pocket where the working set
fits in flash but not in RAM.
"""

from repro.experiments import figure5

from conftest import run_experiment


def test_figure5_prefetch_sensitivity(benchmark):
    result = run_experiment(benchmark, figure5.run)
    by_ws = {row["ws_gb"]: row for row in result.rows}

    # Within each configuration, 80% prefetch is always worse than 95%.
    for row in result.rows:
        assert row["noflash_p80_us"] > row["noflash_p95_us"]
        assert row["flash64_p80_us"] > row["flash64_p95_us"]

    # The pocket: where the WS fits in flash (60 GB), even pessimal
    # prefetch with flash beats optimistic prefetch without it.
    pocket = by_ws[60.0]
    assert pocket["flash64_p80_us"] < pocket["noflash_p95_us"]

    # Out of the pocket (way beyond flash), the pessimal-with-flash
    # curve rises above the optimistic no-flash one.
    out = by_ws[320.0]
    assert out["flash64_p80_us"] > out["noflash_p95_us"]
