"""Figure 9 — read latency vs. flash device timing.

Paper shape: application latency scales with the flash latency wherever
the flash is exposed (so faster flash — down to PCM-like timing — is
directly visible); the 60 GB curves lie below the 80 GB curves; when
the working set falls out of flash the unified architecture's larger
effective capacity shows.
"""

from repro.experiments import figure9

from conftest import run_experiment


def test_figure9_flash_timing(benchmark):
    result = run_experiment(benchmark, figure9.run)
    fastest = result.rows[0]
    slowest = result.rows[-1]

    # Every architecture/working-set combination speeds up with faster
    # flash.
    for column in result.columns:
        if column == "flash_read_us":
            continue
        assert fastest[column] < slowest[column]

    # The 60 GB working set (fits in flash) is faster than the 80 GB
    # one for the same architecture at the paper's default timing.
    assert slowest["naive60_us"] < slowest["naive80_us"]
    assert slowest["lookaside60_us"] < slowest["lookaside80_us"]

    # Rough linearity: the latency increase from the fastest to the
    # slowest flash is of the same order as the flash-read increase
    # times the flash hit share — i.e. clearly nonzero but bounded by
    # the raw timing delta.
    delta_device = slowest["flash_read_us"] - fastest["flash_read_us"]
    delta_app = slowest["naive60_us"] - fastest["naive60_us"]
    assert 0 < delta_app < 1.5 * delta_device
