"""Extension bench: the §3.2 placement question, answered.

"We would also like to estimate how much better (if at all) an
alternate placement scheme performs" — the exclusive migration stack is
that scheme; this bench quantifies it against naive and unified.
"""

from repro.experiments import placement

from conftest import run_experiment


def test_placement_ablation(benchmark):
    result = run_experiment(benchmark, placement.run)

    for row in result.rows:
        # Exclusive keeps RAM-speed writes (unified does not).
        assert row["exclusive_write_us"] < 5.0
        assert row["unified_write_us"] > row["exclusive_write_us"]

        # Migration costs flash traffic the naive placement avoids...
        if row["ws_gb"] >= 20.0:
            assert row["exclusive_flash_writes"] > 0

    # ... and buys read latency where effective capacity matters: when
    # the working set overflows the flash (80 GB+), exclusive reads are
    # no worse than naive's.
    overflow = [r for r in result.rows if 80.0 <= r["ws_gb"] <= 320.0]
    assert overflow, "sweep must include overflow working sets"
    for row in overflow:
        assert row["exclusive_read_us"] <= row["naive_read_us"] * 1.10

    # Exclusive is competitive with unified on reads while winning writes.
    for row in overflow:
        assert row["exclusive_read_us"] <= row["unified_read_us"] * 1.15
