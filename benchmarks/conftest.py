"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures at scaled
geometry (see ``repro.experiments.common``), prints the series, saves it
under ``benchmarks/results/``, and asserts the paper's qualitative
shape.  Set ``REPRO_BENCH_FULL=1`` for the full sweeps (several minutes)
instead of the reduced default ones.  Set ``REPRO_BENCH_WORKERS=N`` to
fan each experiment's sweep points across N worker processes (see
``repro.sweep``; 0 = all cores).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Full sweeps when REPRO_BENCH_FULL=1; reduced (fast) sweeps otherwise.
FAST = os.environ.get("REPRO_BENCH_FULL", "0") != "1"

#: Worker processes per experiment sweep (None = the repro.sweep default).
WORKERS = (
    int(os.environ["REPRO_BENCH_WORKERS"])
    if os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    else None
)

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(result) -> None:
    """Persist the rendered table (and, when the first column is
    numeric, an ASCII chart of the series) next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % result.experiment)
    content = result.format_table()
    if result.notes:
        content += "\nnotes: %s" % result.notes
    try:
        from repro.report.markdown import results_chart

        content += "\n\n" + results_chart(result, result.columns[0])
    except Exception:
        pass  # non-numeric axes (e.g. table1) simply skip the chart
    path.write_text(content + "\n", encoding="utf-8")


def run_experiment(benchmark, run_fn, **kwargs):
    """Run one experiment exactly once under pytest-benchmark timing."""
    kwargs.setdefault("fast", FAST)
    if WORKERS is not None:
        kwargs.setdefault("workers", WORKERS)
    result = benchmark.pedantic(lambda: run_fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.format_table())
    save_result(result)
    return result


@pytest.fixture(autouse=True)
def _quiet_cache_warnings():
    yield
