#!/usr/bin/env python
"""Hot-path replay benchmark: the repo's persistent performance baseline.

Runs pinned-seed trace replays through the three paper architectures
plus a sweep-engine scaling run, and writes ``BENCH_replay.json`` with
wall time, blocks/sec, a per-phase cProfile top-10, and the full result
signature of every replay.  The committed JSON carries *both* the
baseline (pre-optimization) and the latest (post) numbers, so every
future PR has a trajectory to regress against.

Merging rules when ``--out`` already exists:

* same geometry (``scale``/``fast`` match): the stored ``baseline``
  section is preserved and only ``post`` is replaced;
* different geometry or ``--reset-baseline``: the file restarts with
  this run as both baseline and post.

Result signatures are compared between baseline and post: any drift is
an error (exit 3) unless ``--allow-signature-drift`` is given, because
a performance PR must not change simulated results.

Usage::

    PYTHONPATH=src python benchmarks/replay_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/replay_hotpath.py --fast     # CI smoke
    PYTHONPATH=src python benchmarks/replay_hotpath.py --check BENCH_replay.json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.architectures import Architecture  # noqa: E402
from repro.core.simulator import run_simulation  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    DEFAULT_SCALE,
    baseline_config,
    baseline_trace,
)
from repro.sweep import run_sweep  # noqa: E402
from repro.validation.differential import result_signature  # noqa: E402

#: The three paper architectures the pinned-seed replays cover.
ARCHITECTURES = ("naive", "lookaside", "unified")

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


# --- schema -------------------------------------------------------------

#: Minimal schema: required keys and their types, by section.  CI
#: validates emitted files against this (see ``validate_payload``).
_RUN_KEYS = {
    "wall_s": float,
    "blocks": int,
    "blocks_per_sec": float,
    "records": int,
    "signature": dict,
}
_SECTION_KEYS = {
    "replay": dict,
    "sweep": dict,
    "profile": dict,
}
_TOP_KEYS = {
    "schema": int,
    "python": str,
    "scale": int,
    "fast": bool,
    "baseline": dict,
    "post": dict,
    "speedup": dict,
}


def validate_payload(payload: Dict) -> List[str]:
    """Validate a BENCH_replay.json payload; return a list of problems."""
    problems: List[str] = []
    for key, kind in _TOP_KEYS.items():
        if key not in payload:
            problems.append("missing top-level key %r" % key)
        elif not isinstance(payload[key], kind):
            problems.append(
                "%r should be %s, got %s"
                % (key, kind.__name__, type(payload[key]).__name__)
            )
    for section_name in ("baseline", "post"):
        section = payload.get(section_name)
        if not isinstance(section, dict):
            continue
        for key, kind in _SECTION_KEYS.items():
            if not isinstance(section.get(key), kind):
                problems.append("%s.%s missing or mistyped" % (section_name, key))
        replays = section.get("replay")
        if isinstance(replays, dict):
            for architecture in ARCHITECTURES:
                run = replays.get(architecture)
                if not isinstance(run, dict):
                    problems.append("%s.replay.%s missing" % (section_name, architecture))
                    continue
                for key, kind in _RUN_KEYS.items():
                    value = run.get(key)
                    if kind is float and isinstance(value, int):
                        value = float(value)
                    if not isinstance(value, kind):
                        problems.append(
                            "%s.replay.%s.%s missing or mistyped"
                            % (section_name, architecture, key)
                        )
    speedup = payload.get("speedup")
    if isinstance(speedup, dict):
        for architecture in ARCHITECTURES:
            if architecture not in speedup:
                problems.append("speedup.%s missing" % architecture)
    return problems


# --- measurement --------------------------------------------------------


def _trace_blocks(trace) -> int:
    return sum(record.nblocks for record in trace.records)


def _bench_one(architecture: str, trace, config, repeats: int) -> Dict:
    """Best-of-``repeats`` wall time of one pinned-seed replay."""
    walls = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_simulation(trace, config)
        walls.append(time.perf_counter() - start)
    blocks = _trace_blocks(trace)
    wall = min(walls)
    return {
        "wall_s": round(wall, 4),
        "blocks": blocks,
        "blocks_per_sec": round(blocks / wall, 1),
        "records": len(trace.records),
        "signature": result_signature(result),
    }


def _profile_one(architecture: str, trace, config, top: int = 10) -> List[Dict]:
    """cProfile top-``top`` (by cumulative time) of one replay."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_simulation(trace, config)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict] = []
    for func in stats.fcn_list[:top]:  # (file, line, name)
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        short = Path(filename).name if filename != "~" else "builtin"
        rows.append(
            {
                "function": "%s:%d(%s)" % (short, line, name),
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


def _bench_sweep(trace, scale: int, workers: int, repeats: int) -> Dict:
    """Sweep-engine scaling: the same points serially and fanned out."""
    configs = [
        baseline_config(
            flash_gb=flash_gb,
            scale=scale,
            architecture=Architecture.parse(architecture),
        )
        for architecture in ARCHITECTURES
        for flash_gb in (32.0, 64.0)
    ]

    def timed(n_workers: int) -> float:
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            run_sweep(trace, configs, workers=n_workers)
            walls.append(time.perf_counter() - start)
        return min(walls)

    serial = timed(1)
    parallel = timed(workers)
    points = len(configs)
    return {
        "points": points,
        "workers": workers,
        "serial_wall_s": round(serial, 4),
        "parallel_wall_s": round(parallel, 4),
        "points_per_sec_serial": round(points / serial, 2),
        "points_per_sec_parallel": round(points / parallel, 2),
        "parallel_speedup": round(serial / parallel, 2),
    }


def _bench_chunked(trace, replay: Dict[str, Dict], scale: int) -> Dict:
    """Streamed-replay identity gate: the same trace spooled into its
    bounded-memory chunked form must reproduce every materialized
    replay signature bit for bit (and we record its throughput).

    The section is *additive* — not part of the required schema — so
    older BENCH_replay.json files stay valid; but a signature mismatch
    fails the benchmark run itself (see ``main``).
    """
    from repro.traces.chunked import ChunkedCompiledTrace

    chunked = ChunkedCompiledTrace.from_trace(trace)
    runs: Dict[str, Dict] = {}
    mismatches: List[str] = []
    try:
        for architecture in ARCHITECTURES:
            config = baseline_config(
                scale=scale, architecture=Architecture.parse(architecture)
            )
            start = time.perf_counter()
            result = run_simulation(chunked, config)
            wall = time.perf_counter() - start
            signature = result_signature(result)
            reference = replay[architecture]["signature"]
            identical = signature == reference
            if not identical:
                mismatches.extend(
                    "%s.%s: %r != %r"
                    % (architecture, key, reference.get(key), signature.get(key))
                    for key in reference
                    if reference.get(key) != signature.get(key)
                )
            blocks = replay[architecture]["blocks"]
            runs[architecture] = {
                "wall_s": round(wall, 4),
                "blocks_per_sec": round(blocks / wall, 1),
                "identical": identical,
            }
    finally:
        chunked.delete()
    return {
        "replay": runs,
        "identical": not mismatches,
        "mismatches": mismatches[:10],
    }


#: Pinned geometry of the compiled-kernel hot-path replay: a
#: single-threaded, hit-heavy trace (RAM covers the working set, 5 %
#: writes, 98 % working-set locality) — the regime the table-driven
#: kernel exists for.  The geometry is fixed (independent of --scale)
#: so the numbers stay comparable across runs; ``--fast`` only shrinks
#: the volume.  Full volume puts ~1M records (~4M block operations)
#: through each kernel.
_COMPILED_SEED = 20260806
_COMPILED_VOLUME = 4096.0
_COMPILED_VOLUME_FAST = 128.0


def _bench_compiled(fast: bool, repeats: int) -> Dict:
    """Object-kernel vs compiled-kernel replay of the pinned hot trace.

    Both kernels replay the identical trace/config point; the compiled
    kernel must reproduce the object kernel's full result signature bit
    for bit (a mismatch fails the benchmark run, exit 3), and we record
    the wall-time ratio as ``kernel_speedup``.  Additive section — not
    part of the required schema, so older files stay valid.
    """
    import os

    from repro._units import MB
    from repro.core.simulator import SimConfig
    from repro.engine.compiled import COMPILE_KERNEL_ENV
    from repro.fsmodel.impressions import ImpressionsConfig
    from repro.tracegen.config import TraceGenConfig
    from repro.tracegen.generator import generate_trace
    from repro.traces.compiled import compile_trace

    volume = _COMPILED_VOLUME_FAST if fast else _COMPILED_VOLUME
    trace = compile_trace(
        generate_trace(
            TraceGenConfig(
                fs=ImpressionsConfig(total_bytes=64 * MB, max_file_bytes=4 * MB),
                working_set_bytes=4 * MB,
                n_hosts=1,
                threads_per_host=1,
                write_fraction=0.05,
                ws_fraction=0.98,
                io_mean_blocks=4.0,
                volume_multiple=volume,
                seed=_COMPILED_SEED,
            )
        )
    )
    config = SimConfig.baseline_scaled(1024)
    blocks = sum(trace.nblocks)
    saved = os.environ.get(COMPILE_KERNEL_ENV)
    runs: Dict[str, Dict] = {}
    signatures: Dict[str, Dict] = {}
    try:
        for kernel, env in (("object", "0"), ("compiled", "1")):
            os.environ[COMPILE_KERNEL_ENV] = env
            walls = []
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = run_simulation(trace, config)
                walls.append(time.perf_counter() - start)
            wall = min(walls)
            signatures[kernel] = result_signature(result)
            runs[kernel] = {
                "wall_s": round(wall, 4),
                "blocks_per_sec": round(blocks / wall, 1),
            }
    finally:
        if saved is None:
            os.environ.pop(COMPILE_KERNEL_ENV, None)
        else:
            os.environ[COMPILE_KERNEL_ENV] = saved
    reference, candidate = signatures["object"], signatures["compiled"]
    mismatches = [
        "%s: %r != %r" % (key, reference.get(key), candidate.get(key))
        for key in reference
        if reference.get(key) != candidate.get(key)
    ]
    return {
        "records": len(trace),
        "blocks": blocks,
        "volume_multiple": volume,
        "object": runs["object"],
        "compiled": runs["compiled"],
        "kernel_speedup": round(
            runs["object"]["wall_s"] / runs["compiled"]["wall_s"], 2
        ),
        "signature": candidate,
        "identical": not mismatches,
        "mismatches": mismatches[:10],
    }


def measure(scale: int, fast: bool, repeats: int, sweep_workers: int) -> Dict:
    """Run the whole benchmark once and return one baseline/post section."""
    volume_multiple = 2.0 if fast else 4.0
    trace = baseline_trace(scale=scale, volume_multiple=volume_multiple)
    replay: Dict[str, Dict] = {}
    profile: Dict[str, List[Dict]] = {}
    for architecture in ARCHITECTURES:
        config = baseline_config(
            scale=scale, architecture=Architecture.parse(architecture)
        )
        replay[architecture] = _bench_one(architecture, trace, config, repeats)
        profile[architecture] = _profile_one(architecture, trace, config)
    sweep = _bench_sweep(trace, scale, sweep_workers, max(1, repeats - 1))
    chunked = _bench_chunked(trace, replay, scale)
    compiled = _bench_compiled(fast, repeats)
    return {
        "replay": replay,
        "sweep": sweep,
        "profile": profile,
        "chunked": chunked,
        "compiled": compiled,
    }


# --- merging and drift checks -------------------------------------------


def _signature_drift(baseline: Dict, post: Dict) -> List[str]:
    """Compare per-architecture result signatures between sections."""
    problems: List[str] = []
    for architecture in ARCHITECTURES:
        base_run = baseline.get("replay", {}).get(architecture)
        post_run = post.get("replay", {}).get(architecture)
        if base_run is None or post_run is None:
            continue
        base_sig, post_sig = base_run["signature"], post_run["signature"]
        for key in base_sig:
            if base_sig.get(key) != post_sig.get(key):
                problems.append(
                    "%s.%s: %r != %r"
                    % (architecture, key, base_sig.get(key), post_sig.get(key))
                )
    return problems


def merge_payload(
    existing: Optional[Dict],
    current: Dict,
    scale: int,
    fast: bool,
    reset_baseline: bool,
) -> Dict:
    """Fold a fresh measurement into the persistent payload."""
    baseline = current
    if (
        existing is not None
        and not reset_baseline
        and existing.get("scale") == scale
        and existing.get("fast") == fast
        and isinstance(existing.get("baseline"), dict)
    ):
        baseline = existing["baseline"]
    speedup = {}
    for architecture in ARCHITECTURES:
        base_bps = baseline["replay"][architecture]["blocks_per_sec"]
        post_bps = current["replay"][architecture]["blocks_per_sec"]
        speedup[architecture] = round(post_bps / base_bps, 3) if base_bps else None
    return {
        "schema": SCHEMA_VERSION,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "scale": scale,
        "fast": fast,
        "baseline": baseline,
        "post": current,
        "speedup": speedup,
    }


# --- CLI ----------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/replay_hotpath.py",
        description="Pinned-seed replay hot-path benchmark "
        "(writes BENCH_replay.json).",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI-sized run: coarser geometry, fewer repeats",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="explicit geometry divisor (default: REPRO_SCALE_DIVISOR, 4x for --fast)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--sweep-workers",
        type=int,
        default=2,
        help="worker processes for the sweep scaling phase",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_replay.json",
        help="output JSON path (default: repo-root BENCH_replay.json)",
    )
    parser.add_argument(
        "--reset-baseline",
        action="store_true",
        help="discard the stored baseline and restart it from this run",
    )
    parser.add_argument(
        "--allow-signature-drift",
        action="store_true",
        help="do not fail when post signatures differ from the baseline",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="FILE",
        help="only validate FILE against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        payload = json.loads(args.check.read_text())
        problems = validate_payload(payload)
        if problems:
            print("schema validation FAILED for %s:" % args.check)
            for problem in problems:
                print("  - %s" % problem)
            return 2
        print("schema OK: %s" % args.check)
        return 0

    scale = args.scale if args.scale is not None else (
        DEFAULT_SCALE * 4 if args.fast else DEFAULT_SCALE
    )
    repeats = args.repeats if args.repeats is not None else (1 if args.fast else 3)

    current = measure(scale, args.fast, repeats, args.sweep_workers)

    existing = None
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except (ValueError, OSError):
            existing = None
    payload = merge_payload(existing, current, scale, args.fast, args.reset_baseline)

    problems = validate_payload(payload)
    if problems:
        print("internal error: emitted payload fails its own schema:")
        for problem in problems:
            print("  - %s" % problem)
        return 2

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for architecture in ARCHITECTURES:
        run = payload["post"]["replay"][architecture]
        print(
            "%-10s %8.3fs  %10.0f blocks/s  (speedup vs baseline: %sx)"
            % (
                architecture,
                run["wall_s"],
                run["blocks_per_sec"],
                payload["speedup"][architecture],
            )
        )
    sweep = payload["post"]["sweep"]
    print(
        "sweep      %d points: serial %.3fs, %d workers %.3fs (%.2fx)"
        % (
            sweep["points"],
            sweep["serial_wall_s"],
            sweep["workers"],
            sweep["parallel_wall_s"],
            sweep["parallel_speedup"],
        )
    )

    chunked = payload["post"].get("chunked")
    if chunked is not None:
        if not chunked.get("identical", True):
            print("chunked replay signature mismatch vs materialized:")
            for problem in chunked.get("mismatches", [])[:10]:
                print("  - %s" % problem)
            return 3
        walls = [run["wall_s"] for run in chunked["replay"].values()]
        print(
            "chunked    %d replays bit-identical to materialized "
            "(%.3fs total streamed replay)" % (len(walls), sum(walls))
        )

    compiled = payload["post"].get("compiled")
    if compiled is not None:
        if not compiled.get("identical", True):
            print("compiled-kernel signature mismatch vs object kernel:")
            for problem in compiled.get("mismatches", [])[:10]:
                print("  - %s" % problem)
            return 3
        print(
            "compiled   %d records: object %.3fs, compiled %.3fs (%.2fx, "
            "bit-identical)"
            % (
                compiled["records"],
                compiled["object"]["wall_s"],
                compiled["compiled"]["wall_s"],
                compiled["kernel_speedup"],
            )
        )

    drift = _signature_drift(payload["baseline"], payload["post"])
    if drift:
        print("result-signature drift vs stored baseline:")
        for problem in drift[:10]:
            print("  - %s" % problem)
        if not args.allow_signature_drift:
            print("refusing to accept drifting results "
                  "(--allow-signature-drift or --reset-baseline to override)")
            return 3
    else:
        print("result signatures: bit-identical to stored baseline")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
