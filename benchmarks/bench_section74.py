"""§7.4's omitted graphs, regenerated, plus the §3.8 consistency-traffic
extension."""

from repro.experiments import consistency_traffic, section74

from conftest import run_experiment


def test_section74_cache_size_sweep(benchmark):
    result = run_experiment(benchmark, section74.run)
    by_size = {row["flash_gb"]: row for row in result.rows}

    # Latency decreases with flash size for both working sets...
    for label in ("read60_us", "read80_us"):
        series = [row[label] for row in result.rows]
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier * 1.1

    # ... until the cache captures the working set, then plateaus: the
    # 60 GB curve gains almost nothing past 64 GB.
    assert by_size[64.0]["read60_us"] < 1.25 * by_size[128.0]["read60_us"]
    # While the 80 GB curve is still improving from 32 to 64.
    assert by_size[32.0]["read80_us"] > 1.3 * by_size[64.0]["read80_us"]

    # Hit rates saturate at the plateau.
    assert by_size[64.0]["hit60_pct"] > 75.0


def test_consistency_traffic_overhead(benchmark):
    result = run_experiment(benchmark, consistency_traffic.run)

    for row in result.rows:
        # Modeling the traffic can only add latency...
        assert row["read_modeled_us"] >= row["read_counted_us"] * 0.99
        # ... but the minimal protocol costs single-digit percent:
        # the paper's count-only simplification did not hide a large
        # effect.
        assert row["overhead_pct"] < 10.0

    assert any(row["overhead_pct"] > 0.3 for row in result.rows), (
        "the traffic should be measurable somewhere in the grid"
    )
