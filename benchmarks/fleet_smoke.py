#!/usr/bin/env python
"""Fleet-scale consistency smoke benchmark (CI gate).

Proves the fleet-scale claims of the sharded consistency directory and
the multi-tenant scenario family, with hard exits rather than advisory
prints:

1. **Fleet-size construction.**  Building a 1000-host :class:`System`
   (sharded directory, slotted host stacks) must finish inside a
   wall-clock budget and a tracemalloc heap budget; ``drop_host`` over
   a populated directory must also stay fast.  A regression to
   per-host dict scans or unslotted per-instance dicts blows either
   budget.

2. **Scenario determinism.**  Every fleet scenario
   (:data:`repro.tracegen.fleet.SCENARIOS`) generates at a pinned seed
   and replays twice; the two replays' result signatures must be
   bit-identical, and the consistency counters must satisfy
   ``writes_requiring_invalidation <= block_writes``.

3. **Latency-model plumbing.**  Replaying the steady scenario with a
   modeled :class:`~repro.net.directory.DirectoryTiming` must surface
   ``invalidation_latency_ns > 0``, while the instant default must
   report exactly zero.

Usage::

    PYTHONPATH=src python benchmarks/fleet_smoke.py                # full gate
    PYTHONPATH=src python benchmarks/fleet_smoke.py --hosts 200    # quicker
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._units import KB, MB  # noqa: E402
from repro.core.config import SimConfig  # noqa: E402
from repro.core.machine import System  # noqa: E402
from repro.core.simulator import run_simulation  # noqa: E402
from repro.net.directory import DirectoryTiming  # noqa: E402
from repro.tracegen.fleet import SCENARIOS, FleetSpec, fleet_trace  # noqa: E402
from repro.validation.differential import result_signature  # noqa: E402

#: wall-clock budget for building the 1000-host System (measured
#: ~0.04 s; the budget absorbs slow shared CI runners).
DEFAULT_BUILD_BUDGET_S = 5.0

#: tracemalloc peak budget for the 1000-host build.
DEFAULT_BUILD_BUDGET_MB = 64

#: tracemalloc peak budget for the scenario generate+replay phase.
DEFAULT_REPLAY_BUDGET_MB = 128

DEFAULT_HOSTS = 1000


def _fleet_config() -> SimConfig:
    """Small per-host caches: the gate times *structure*, not replay."""
    return SimConfig(ram_bytes=512 * KB, flash_bytes=2 * MB)


def phase_build_scale(n_hosts: int, budget_s: float, budget_mb: int) -> Dict:
    """Time and measure a fleet-sized System build plus drop_host."""
    config = _fleet_config()
    tracemalloc.start()
    started = time.perf_counter()
    system = System(config, n_hosts)
    built = time.perf_counter()
    directory = system.directory
    # Populate a holder per host, then retire one host, exercising the
    # restart path's bulk forget at fleet size.
    for host in range(n_hosts):
        directory.note_copy(host, host * 7)
    drop_started = time.perf_counter()
    directory.drop_host(n_hosts - 1)
    dropped = time.perf_counter()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    build_s = built - started
    return {
        "hosts": n_hosts,
        "shards": directory.n_shards,
        "build_wall_s": round(build_s, 4),
        "drop_host_wall_s": round(dropped - drop_started, 4),
        "budget_s": budget_s,
        "tracemalloc_peak_mb": round(peak / MB, 2),
        "budget_mb": budget_mb,
        "within_budget": build_s <= budget_s and peak / MB <= budget_mb,
    }


def phase_scenarios(budget_mb: int) -> Dict:
    """Generate + replay every scenario twice; check determinism and
    the consistency-counter invariant."""
    spec = FleetSpec(n_hosts=32, n_tenants=4, ws_bytes=1 * MB)
    config = _fleet_config()
    tracemalloc.start()
    started = time.perf_counter()
    scenarios: Dict[str, Dict] = {}
    for scenario in SCENARIOS:
        trace = fleet_trace(spec, scenario)
        first = run_simulation(trace, config, n_hosts=spec.n_hosts)
        second = run_simulation(
            fleet_trace(spec, scenario), config, n_hosts=spec.n_hosts
        )
        scenarios[scenario] = {
            "records": len(trace),
            "inval_pct": round(100.0 * first.invalidation_fraction, 2),
            "deterministic": result_signature(first) == result_signature(second),
            "counters_sane": (
                first.writes_requiring_invalidation <= first.block_writes
            ),
        }
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "scenarios": scenarios,
        "wall_s": round(time.perf_counter() - started, 3),
        "tracemalloc_peak_mb": round(peak / MB, 2),
        "budget_mb": budget_mb,
        "within_budget": peak / MB <= budget_mb,
    }


def phase_latency_model() -> Dict:
    """Instant default reports zero stall; a modeled directory does not."""
    spec = FleetSpec(n_hosts=8, n_tenants=2, ws_bytes=1 * MB)
    trace = fleet_trace(spec, "steady")
    instant_config = _fleet_config()
    modeled_config = replace(
        instant_config,
        timing=instant_config.timing.with_directory(
            DirectoryTiming(lookup_ns=5_000, invalidate_ns=20_000)
        ),
    )
    instant = run_simulation(trace, instant_config, n_hosts=spec.n_hosts)
    modeled = run_simulation(trace, modeled_config, n_hosts=spec.n_hosts)
    return {
        "instant_stall_ns": instant.invalidation_latency_ns,
        "modeled_stall_ns": modeled.invalidation_latency_ns,
        "instant_is_zero": instant.invalidation_latency_ns == 0,
        "modeled_is_positive": modeled.invalidation_latency_ns > 0,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/fleet_smoke.py",
        description="Fleet-scale consistency gate.",
    )
    parser.add_argument(
        "--hosts",
        type=int,
        default=DEFAULT_HOSTS,
        help="host count of the construction phase",
    )
    parser.add_argument(
        "--build-budget-s",
        type=float,
        default=DEFAULT_BUILD_BUDGET_S,
        help="wall-clock budget for the System build",
    )
    parser.add_argument(
        "--build-budget-mb",
        type=int,
        default=DEFAULT_BUILD_BUDGET_MB,
        help="tracemalloc peak budget for the System build",
    )
    parser.add_argument(
        "--replay-budget-mb",
        type=int,
        default=DEFAULT_REPLAY_BUDGET_MB,
        help="tracemalloc peak budget for the scenario phase",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the phase report as JSON to FILE",
    )
    args = parser.parse_args(argv)

    report = {
        "build_scale": phase_build_scale(
            args.hosts, args.build_budget_s, args.build_budget_mb
        ),
        "scenarios": phase_scenarios(args.replay_budget_mb),
        "latency_model": phase_latency_model(),
    }
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    build = report["build_scale"]
    print(
        "build-scale: %d hosts (%d shards) in %.3fs (budget %.1fs), "
        "drop_host %.3fs, peak heap %.1f MB (budget %d MB)"
        % (
            build["hosts"],
            build["shards"],
            build["build_wall_s"],
            build["budget_s"],
            build["drop_host_wall_s"],
            build["tracemalloc_peak_mb"],
            build["budget_mb"],
        )
    )
    problems: List[str] = []
    if not build["within_budget"]:
        problems.append(
            "%d-host build took %.3fs / %.1f MB (budgets %.1fs / %d MB)"
            % (
                build["hosts"],
                build["build_wall_s"],
                build["tracemalloc_peak_mb"],
                build["budget_s"],
                build["budget_mb"],
            )
        )
    scenario_phase = report["scenarios"]
    for name, row in scenario_phase["scenarios"].items():
        status = row["deterministic"] and row["counters_sane"]
        print(
            "scenario: %-16s %5d records, inval %5.1f%% — %s"
            % (name, row["records"], row["inval_pct"], "OK" if status else "FAIL")
        )
        if not row["deterministic"]:
            problems.append("scenario %s replayed non-deterministically" % name)
        if not row["counters_sane"]:
            problems.append(
                "scenario %s: writes_requiring_invalidation > block_writes" % name
            )
    if not scenario_phase["within_budget"]:
        problems.append(
            "scenario phase peaked at %.1f MB > budget %d MB"
            % (scenario_phase["tracemalloc_peak_mb"], scenario_phase["budget_mb"])
        )
    latency = report["latency_model"]
    print(
        "latency-model: instant %d ns, modeled %d ns of directory stalls"
        % (latency["instant_stall_ns"], latency["modeled_stall_ns"])
    )
    if not latency["instant_is_zero"]:
        problems.append(
            "instant directory reported %d ns of stalls" % latency["instant_stall_ns"]
        )
    if not latency["modeled_is_positive"]:
        problems.append("modeled directory reported zero stall time")
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem)
        return 1
    print("fleet smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
