"""Figure 4 — read latency vs. working-set size across flash sizes.

Paper shape: no-flash worst everywhere and plateauing around the filer
miss cost; bigger flash strictly better; the flash's advantage is
dramatic while the working set fits and persists (smaller) far beyond.
"""

from repro.experiments import figure4

from conftest import run_experiment


def test_figure4_flash_vs_no_flash(benchmark):
    result = run_experiment(benchmark, figure4.run)
    by_ws = {row["ws_gb"]: row for row in result.rows}

    # Ordering: noflash >= 32 >= 64 >= 128 at every working-set size
    # (small tolerance for sampling noise in which filer reads are slow).
    for row in result.rows:
        assert row["noflash_us"] >= row["flash32_us"] * 0.9
        assert row["flash32_us"] >= row["flash64_us"] * 0.9
        assert row["flash64_us"] >= row["flash128_us"] * 0.9

    # Dramatic improvement while the WS fits in flash: at 60 GB the
    # 64 GB flash wins by at least 2x over no flash.
    fits = by_ws[60.0]
    assert fits["noflash_us"] > 2.0 * fits["flash64_us"]

    # The flash still helps when the WS far exceeds it (320 GB).
    huge = by_ws[320.0]
    assert huge["noflash_us"] > 1.1 * huge["flash64_us"]

    # The no-flash curve saturates: growing the WS stops hurting once
    # nothing fits anyway.
    assert by_ws[320.0]["noflash_us"] < 1.3 * by_ws[80.0]["noflash_us"]
