"""Setuptools shim.

All project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip combo
cannot build PEP 660 editable wheels (e.g. offline boxes without the
``wheel`` package).
"""

from setuptools import setup

setup()
